//! The semi-space copying heap and its DSU-aware collector.
//!
//! This reproduces the substrate of paper §3.4: a Cheney-style semi-space
//! copying collector extended so that objects whose class signature changed
//! are *duplicated* during the copy — an old-layout copy plus a zeroed
//! new-layout object — with the pair recorded in an **update log** for the
//! transformer pass that runs after collection. Old-copy reference fields
//! are forwarded like any other object's, so transformers dereferencing
//! `from` fields observe *transformed* referents, exactly the paper's
//! programming model.
//!
//! # Memory layout
//!
//! The heap is a flat `Vec<u64>`; word 0 is reserved so address 0 can mean
//! `null`. Two equal semispaces follow. Every heap cell starts with a
//! header word:
//!
//! ```text
//! bit 0      forwarded flag; if set, bits 1.. hold the forwarding address
//! bits 1-2   kind: 0 = object, 1 = reference array, 2 = primitive array,
//!            3 = string (packed UTF-8 bytes)
//! bits 32-63 class id (objects) or element/byte length (arrays/strings)
//! ```
//!
//! Objects are `1 + size_words(class)` words; arrays `1 + len`; strings
//! `1 + ceil(bytes/8)`.
//!
//! # The flattened hot path
//!
//! The collector does not consult the class registry directly. Instead the
//! caller hands it a [`LayoutSnapshot`] — a dense table indexed by
//! [`ClassId`] holding each class's size and a packed u64 ref bitset —
//! built once per collection (and cached by the registry between class
//! loads). The scan loop indexes the snapshot once per cell and walks ref
//! fields with `trailing_zeros`, so a wide class with few references costs
//! one iteration per reference, not one per field. The DSU remap policy is
//! likewise resolved up front into a dense [`RemapTable`]; ordinary
//! collections pass `None` and skip the remap probe entirely.
//!
//! # Parallel collection
//!
//! [`Heap::collect_parallel`] shards the root set across a fixed pool of
//! OS workers ([`MAX_GC_THREADS`] at most). Each worker owns a private
//! bump buffer (TLAB-style chunks carved from to-space by a shared atomic
//! cursor), a private gray stack, a private stripe of the update log, and
//! private copy counters. Forwarding uses a claim protocol on the cell
//! header: a worker CASes the header to a [`BUSY`] sentinel, copies the
//! cell into its own buffer, then publishes the forwarding pointer with a
//! release store; losers of the race spin until the forward appears. Two
//! workers racing on the same object therefore agree on a single to-space
//! copy and **no cell is ever copied twice**. After the workers join,
//! counters are folded with saturating adds in worker order and the log
//! stripes are merged and stably sorted by *from-space* address — the
//! same canonical order the serial collector emits — so the transformer
//! pass (and everything downstream of it) is bit-identical to a serial
//! collection of the same heap.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::error::VmError;
use crate::ids::ClassId;
use crate::value::GcRef;

/// Upper bound on GC worker threads; `VmConfig::gc_threads` is clamped to
/// `1..=MAX_GC_THREADS` (the paper's pauses are dominated by copy + scan,
/// which stops scaling well past a handful of cores on one heap).
pub const MAX_GC_THREADS: usize = 8;

/// Claim sentinel for parallel copying: a forwarding header whose target
/// is address 0. No real forward can point at word 0 (it is reserved so
/// that 0 means `null`), so the value is unambiguous.
const BUSY: u64 = 1;

/// Words per TLAB-style bump chunk each worker carves from to-space.
/// Cells larger than this get an exact-fit block instead. Chunk tails the
/// owner cannot fill are wasted until the next collection — harmless,
/// since nothing parses to-space linearly after a parallel collection and
/// the mutator zeroes cells on allocation.
const PAR_CHUNK_WORDS: usize = 4096;

/// Reinterprets the heap's words as atomics for the parallel collector.
///
/// The `&mut` proves exclusive ownership, so handing out a shared atomic
/// view is sound; every access during the parallel phase then goes
/// through atomic operations.
fn as_atomic(words: &mut [u64]) -> &[AtomicU64] {
    const _: () = assert!(
        std::mem::size_of::<AtomicU64>() == std::mem::size_of::<u64>()
            && std::mem::align_of::<AtomicU64>() == std::mem::align_of::<u64>()
    );
    // SAFETY: AtomicU64 is layout-compatible with u64 (checked above) and
    // the exclusive borrow guarantees no non-atomic access can alias the
    // returned view for its lifetime.
    unsafe { &*(words as *mut [u64] as *const [AtomicU64]) }
}

/// What kind of heap cell a header describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HeapKind {
    /// Plain object with class-determined layout.
    Object,
    /// Array of references.
    RefArray,
    /// Array of primitives (ints/bools).
    PrimArray,
    /// Immutable string: packed UTF-8 payload.
    Str,
}

/// Per-class layout information the collector needs.
///
/// The class registry implements this; [`LayoutSnapshot::from_layouts`]
/// flattens an implementation into the dense table the collector consumes,
/// which lets heap unit tests run without a registry.
pub trait ClassLayouts {
    /// Number of field words of instances of `class` (header excluded).
    fn object_size(&self, class: ClassId) -> usize;
    /// Which field words hold references.
    fn ref_map(&self, class: ClassId) -> &[bool];
}

/// The DSU remapping policy consulted during a collection (paper §3.4).
///
/// Returning `Some(new_class)` for a class makes the collector duplicate
/// each instance (old copy + new-layout object) and log the pair. The
/// policy is resolved once per collection into a [`RemapTable`]; the
/// collector never calls it per object.
pub trait GcRemap {
    /// The updated class an instance of `class` must be converted to.
    fn remap(&self, class: ClassId) -> Option<ClassId>;
}

/// The identity policy: an ordinary, non-updating collection.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRemap;

impl GcRemap for NoRemap {
    fn remap(&self, _class: ClassId) -> Option<ClassId> {
        None
    }
}

/// A snapshot entry: object size in words plus the offset of the class's
/// ref bitset in the shared pool. `size_words == u32::MAX` marks a class
/// id the snapshot has no layout for.
#[derive(Debug, Clone, Copy)]
struct SnapEntry {
    size_words: u32,
    bits_start: u32,
}

impl SnapEntry {
    const UNKNOWN: SnapEntry = SnapEntry { size_words: u32::MAX, bits_start: 0 };

    #[inline]
    fn ref_words(&self) -> usize {
        (self.size_words as usize).div_ceil(64)
    }
}

/// A dense, immutable snapshot of every loaded class's layout, indexed by
/// [`ClassId`].
///
/// Per class: the instance size in words and a packed bitset (one bit per
/// field word, u64 granules in a shared pool) marking reference fields.
/// [`Heap::collect`] reads layouts exclusively from a snapshot — one index
/// per scanned cell, `trailing_zeros` per reference field — instead of
/// making a virtual `ClassLayouts` call per field, which was the hottest
/// dispatch in the VM.
///
/// The registry builds and caches one of these, invalidating on class load
/// and rename; tests can assemble one by hand with [`LayoutSnapshot::set`].
#[derive(Debug, Clone, Default)]
pub struct LayoutSnapshot {
    entries: Vec<SnapEntry>,
    bits: Vec<u64>,
}

impl LayoutSnapshot {
    /// Creates an empty snapshot (no classes).
    pub fn new() -> Self {
        LayoutSnapshot::default()
    }

    /// Records `class`'s layout: one bool per field word, `true` for
    /// reference fields. The instance size is `ref_map.len()`.
    pub fn set(&mut self, class: ClassId, ref_map: &[bool]) {
        let idx = class.index();
        if self.entries.len() <= idx {
            self.entries.resize(idx + 1, SnapEntry::UNKNOWN);
        }
        let bits_start = self.bits.len() as u32;
        self.bits.resize(self.bits.len() + ref_map.len().div_ceil(64), 0);
        for (i, &is_ref) in ref_map.iter().enumerate() {
            if is_ref {
                self.bits[bits_start as usize + i / 64] |= 1u64 << (i % 64);
            }
        }
        self.entries[idx] = SnapEntry { size_words: ref_map.len() as u32, bits_start };
    }

    /// Flattens a [`ClassLayouts`] implementation over the given classes.
    pub fn from_layouts(layouts: &dyn ClassLayouts, classes: &[ClassId]) -> Self {
        let mut snap = LayoutSnapshot::new();
        for &class in classes {
            let refs = layouts.ref_map(class);
            assert_eq!(
                refs.len(),
                layouts.object_size(class),
                "ref map not parallel to layout for {class}"
            );
            snap.set(class, refs);
        }
        snap
    }

    /// Number of class-id slots (known or not) the snapshot covers.
    pub fn num_classes(&self) -> usize {
        self.entries.len()
    }

    /// Instance size in field words.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not in the snapshot.
    #[inline]
    pub fn size_words(&self, class: ClassId) -> usize {
        self.entry(class).size_words as usize
    }

    #[inline]
    fn entry(&self, class: ClassId) -> SnapEntry {
        let e = self.entries.get(class.index()).copied().unwrap_or(SnapEntry::UNKNOWN);
        assert_ne!(e.size_words, u32::MAX, "class {class} missing from layout snapshot");
        e
    }
}

/// A [`GcRemap`] policy resolved into a dense per-class table, built once
/// per update collection so the copy path costs one indexed load per
/// object instead of a virtual call.
#[derive(Debug, Clone, Default)]
pub struct RemapTable {
    map: Vec<Option<ClassId>>,
}

impl RemapTable {
    /// Resolves `policy` for every class id below `num_classes`.
    pub fn from_policy(policy: &dyn GcRemap, num_classes: usize) -> Self {
        RemapTable { map: (0..num_classes).map(|i| policy.remap(ClassId(i as u32))).collect() }
    }

    /// Whether no class is remapped (an ordinary collection — callers
    /// should pass `None` to [`Heap::collect`] instead).
    pub fn is_empty(&self) -> bool {
        self.map.iter().all(Option::is_none)
    }

    #[inline]
    fn get(&self, class: ClassId) -> Option<ClassId> {
        self.map.get(class.index()).copied().flatten()
    }
}

/// Result of a collection.
#[derive(Debug, Clone, Default)]
pub struct GcOutcome {
    /// Objects (cells) copied.
    pub copied_cells: usize,
    /// Words copied (headers included).
    pub copied_words: usize,
    /// Old-copy/new-object pairs produced by the remap policy: the paper's
    /// update log, consumed by the transformer pass. Canonically ordered
    /// by ascending *from-space* address of the original object, so serial
    /// and parallel collections of the same heap produce the same log (and
    /// hence the same transformer execution order).
    pub update_log: Vec<(GcRef, GcRef)>,
    /// OS workers that performed the copy (1 = the serial path).
    pub workers: usize,
}

/// The semi-space heap.
#[derive(Debug)]
pub struct Heap {
    words: Vec<u64>,
    semi: usize,
    /// `false`: active space is A (`[1, semi]`); `true`: space B.
    active_b: bool,
    alloc: usize,
    collections: u64,
    /// Whether any forwarding word has been installed since the last
    /// collection (lazy indirection or a lazy-migration epoch). While
    /// set, linear walks size forwarded cells via `forward_headers`; any
    /// collection abandons from-space and clears it.
    lazy_forwards: bool,
    /// Pre-forward header of every cell [`Heap::install_forward`] has
    /// overwritten since the last collection. A forwarding word destroys
    /// the cell's size, so linear walks ([`Heap::for_each_object`], the
    /// SATB commit scan, the collapse sweep) consult this side table to
    /// step over forwarded cells. Cleared whenever a collection abandons
    /// from-space.
    forward_headers: std::collections::HashMap<u32, u64>,
}

const KIND_SHIFT: u64 = 1;
const KIND_MASK: u64 = 0b110;
const META_SHIFT: u64 = 32;

fn header(kind: HeapKind, meta: u32) -> u64 {
    let k = match kind {
        HeapKind::Object => 0u64,
        HeapKind::RefArray => 1,
        HeapKind::PrimArray => 2,
        HeapKind::Str => 3,
    };
    (u64::from(meta) << META_SHIFT) | (k << KIND_SHIFT)
}

fn header_kind(h: u64) -> HeapKind {
    match (h & KIND_MASK) >> KIND_SHIFT {
        0 => HeapKind::Object,
        1 => HeapKind::RefArray,
        2 => HeapKind::PrimArray,
        _ => HeapKind::Str,
    }
}

fn header_meta(h: u64) -> u32 {
    (h >> META_SHIFT) as u32
}

/// Size in words (header included) of the live cell whose header is `h`.
#[inline]
fn cell_size_of(h: u64, snapshot: &LayoutSnapshot) -> usize {
    let meta = header_meta(h) as usize;
    match header_kind(h) {
        HeapKind::Object => 1 + snapshot.size_words(ClassId(meta as u32)),
        HeapKind::RefArray | HeapKind::PrimArray => 1 + meta,
        HeapKind::Str => 1 + meta.div_ceil(8),
    }
}

impl Heap {
    /// Creates a heap with two semispaces of `semispace_words` each.
    pub fn new(semispace_words: usize) -> Self {
        assert!(semispace_words >= 16, "heap too small to be useful");
        Heap {
            words: vec![0; 1 + 2 * semispace_words],
            semi: semispace_words,
            active_b: false,
            alloc: 1,
            collections: 0,
            lazy_forwards: false,
            forward_headers: std::collections::HashMap::new(),
        }
    }

    fn base(&self, space_b: bool) -> usize {
        if space_b {
            1 + self.semi
        } else {
            1
        }
    }

    fn limit(&self, space_b: bool) -> usize {
        self.base(space_b) + self.semi
    }

    /// Words currently allocated in the active semispace.
    pub fn used_words(&self) -> usize {
        self.alloc - self.base(self.active_b)
    }

    /// Words still free in the active semispace.
    pub fn free_words(&self) -> usize {
        self.limit(self.active_b) - self.alloc
    }

    /// Words per semispace.
    pub fn semispace_words(&self) -> usize {
        self.semi
    }

    /// Number of collections performed so far.
    pub fn collections(&self) -> u64 {
        self.collections
    }

    fn alloc_raw(&mut self, n: usize) -> Option<usize> {
        if self.alloc + n > self.limit(self.active_b) {
            return None;
        }
        let addr = self.alloc;
        self.alloc += n;
        // Zero the cell: the space may hold stale data from before the
        // previous collection.
        self.words[addr..addr + n].fill(0);
        Some(addr)
    }

    /// Allocates an object of `class` with `size` zeroed field words.
    pub fn alloc_object(&mut self, class: ClassId, size: usize) -> Option<GcRef> {
        let addr = self.alloc_raw(1 + size)?;
        self.words[addr] = header(HeapKind::Object, class.0);
        Some(GcRef(addr as u32))
    }

    /// Allocates an array of `len` elements; `is_ref` selects the kind.
    pub fn alloc_array(&mut self, is_ref: bool, len: usize) -> Option<GcRef> {
        let addr = self.alloc_raw(1 + len)?;
        let kind = if is_ref { HeapKind::RefArray } else { HeapKind::PrimArray };
        self.words[addr] = header(kind, len as u32);
        Some(GcRef(addr as u32))
    }

    /// Allocates a string cell holding `s`.
    pub fn alloc_string(&mut self, s: &str) -> Option<GcRef> {
        let bytes = s.as_bytes();
        let payload = bytes.len().div_ceil(8);
        let addr = self.alloc_raw(1 + payload)?;
        self.words[addr] = header(HeapKind::Str, bytes.len() as u32);
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.words[addr + 1 + i] = u64::from_le_bytes(w);
        }
        Some(GcRef(addr as u32))
    }

    /// The kind of the cell at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` points at a forwarded cell (only occurs mid-GC or in
    /// lazy-indirection mode before [`Heap::resolve`]).
    pub fn kind(&self, r: GcRef) -> HeapKind {
        let h = self.words[r.addr()];
        assert_eq!(h & 1, 0, "kind() on forwarded cell {r}");
        header_kind(h)
    }

    /// The class of the object at `r`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not an object.
    pub fn class_of(&self, r: GcRef) -> ClassId {
        let h = self.words[r.addr()];
        assert_eq!(h & 1, 0, "class_of() on forwarded cell {r}");
        assert_eq!(header_kind(h), HeapKind::Object, "class_of() on non-object");
        ClassId(header_meta(h))
    }

    /// Length of the array (or byte length of the string) at `r`.
    pub fn len_of(&self, r: GcRef) -> u32 {
        let h = self.words[r.addr()];
        assert_eq!(h & 1, 0, "len_of() on forwarded cell {r}");
        header_meta(h)
    }

    /// Reads field/element word `offset` of the cell at `r`.
    pub fn get(&self, r: GcRef, offset: usize) -> u64 {
        self.words[r.addr() + 1 + offset]
    }

    /// Writes field/element word `offset` of the cell at `r`.
    pub fn set(&mut self, r: GcRef, offset: usize, word: u64) {
        self.words[r.addr() + 1 + offset] = word;
    }

    /// Reads the string cell at `r`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not a string.
    pub fn read_string(&self, r: GcRef) -> String {
        let h = self.words[r.addr()];
        assert_eq!(header_kind(h), HeapKind::Str, "read_string() on non-string");
        let len = header_meta(h) as usize;
        let mut bytes = Vec::with_capacity(len);
        let mut remaining = len;
        let mut i = r.addr() + 1;
        while remaining > 0 {
            let chunk = self.words[i].to_le_bytes();
            let take = remaining.min(8);
            bytes.extend_from_slice(&chunk[..take]);
            remaining -= take;
            i += 1;
        }
        String::from_utf8(bytes).expect("heap strings are valid UTF-8")
    }

    /// Whether the cell at `r` carries a forwarding pointer.
    pub fn is_forwarded(&self, r: GcRef) -> bool {
        self.words[r.addr()] & 1 == 1
    }

    /// Installs a forwarding pointer `from → to` (lazy-indirection mode
    /// and lazy-migration first-touch duplication). The cell's pre-forward
    /// header is preserved in a side table so linear walks can still step
    /// over it.
    pub fn install_forward(&mut self, from: GcRef, to: GcRef) {
        let h = self.words[from.addr()];
        debug_assert_eq!(h & 1, 0, "install_forward() on already-forwarded cell {from}");
        self.forward_headers.insert(from.0, h);
        self.words[from.addr()] = (u64::from(to.0) << 1) | 1;
        self.lazy_forwards = true;
    }

    /// Whether a forwarding word has been installed since the last
    /// collection (linear walks then size forwarded cells from the
    /// side table instead of their headers).
    pub fn has_lazy_forwards(&self) -> bool {
        self.lazy_forwards
    }

    /// First word of the active semispace.
    pub fn active_base(&self) -> usize {
        self.base(self.active_b)
    }

    /// The active semispace's bump-allocation cursor: the address the next
    /// allocation will take. `active_base()..alloc_cursor()` spans every
    /// cell allocated so far — the SATB commit watermark.
    pub fn alloc_cursor(&self) -> usize {
        self.alloc
    }

    /// Size in words (header included) of the cell at `addr`, live or
    /// forwarded — a forwarded cell is sized from its preserved
    /// pre-forward header.
    fn walk_size(&self, addr: usize, h: u64, snapshot: &LayoutSnapshot) -> usize {
        if h & 1 == 1 {
            let saved = *self
                .forward_headers
                .get(&(addr as u32))
                .expect("forwarded cell with no preserved header in a linear walk");
            cell_size_of(saved, snapshot)
        } else {
            cell_size_of(h, snapshot)
        }
    }

    /// Walks every cell in the active semispace in ascending address
    /// order, invoking `f` on each *unforwarded* plain object with its
    /// class. Forwarded cells (lazy-indirection or mid-epoch duplication)
    /// are stepped over via their preserved headers.
    pub fn for_each_object(&self, snapshot: &LayoutSnapshot, mut f: impl FnMut(GcRef, ClassId)) {
        self.scan_objects(self.base(self.active_b), self.alloc, usize::MAX, snapshot, |r, c| {
            f(r, c);
        });
    }

    /// Resumable bounded heap walk: scans at most `max_cells` cells from
    /// `from` (a cell boundary) toward `limit`, invoking `f` on each
    /// unforwarded plain object, and returns `(next_addr, cells_stepped)`
    /// (`next_addr >= limit` once the range is exhausted). Forwarded cells
    /// are stepped over via their preserved pre-forward headers, so the
    /// scan tolerates mutator-installed forwards between batches — the
    /// SATB commit scanner's core.
    pub fn scan_objects(
        &self,
        from: usize,
        limit: usize,
        max_cells: usize,
        snapshot: &LayoutSnapshot,
        mut f: impl FnMut(GcRef, ClassId),
    ) -> (usize, usize) {
        let mut addr = from;
        let mut cells = 0;
        while addr < limit && cells < max_cells {
            let h = self.words[addr];
            if h & 1 == 0 && header_kind(h) == HeapKind::Object {
                f(GcRef(addr as u32), ClassId(header_meta(h)));
            }
            addr += self.walk_size(addr, h, snapshot);
            cells += 1;
        }
        (addr, cells)
    }

    /// Resumable bounded forwarding collapse: walks at most `max_cells`
    /// cells from `from` toward `limit`, rewriting every reference slot
    /// that points at a forwarded cell to its resolved target. Returns
    /// `(next_addr, cells_stepped, slots_rewritten)`. Once every referrer
    /// below the epoch's allocation horizon has been swept (and roots
    /// rewritten by the caller), no live reference crosses a forwarding
    /// word and the stale originals are plain garbage for the next
    /// collection.
    pub fn sweep_forwards(
        &mut self,
        from: usize,
        limit: usize,
        max_cells: usize,
        snapshot: &LayoutSnapshot,
    ) -> (usize, usize, usize) {
        let mut addr = from;
        let mut cells = 0;
        let mut rewritten = 0;
        while addr < limit && cells < max_cells {
            let h = self.words[addr];
            if h & 1 == 0 {
                let meta = header_meta(h) as usize;
                match header_kind(h) {
                    HeapKind::Object => {
                        let e = snapshot.entry(ClassId(meta as u32));
                        for wi in 0..e.ref_words() {
                            let mut bits = snapshot.bits[e.bits_start as usize + wi];
                            let word_base = addr + 1 + wi * 64;
                            while bits != 0 {
                                let slot = word_base + bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                rewritten += self.collapse_slot(slot);
                            }
                        }
                    }
                    HeapKind::RefArray => {
                        for slot in addr + 1..addr + 1 + meta {
                            rewritten += self.collapse_slot(slot);
                        }
                    }
                    HeapKind::PrimArray | HeapKind::Str => {}
                }
            }
            addr += self.walk_size(addr, h, snapshot);
            cells += 1;
        }
        (addr, cells, rewritten)
    }

    /// Rewrites one reference slot through the forwarding chain; returns 1
    /// if the slot changed.
    #[inline]
    fn collapse_slot(&mut self, slot: usize) -> usize {
        let val = self.words[slot];
        if val != 0 && self.words[val as usize] & 1 == 1 {
            self.words[slot] = u64::from(self.resolve(GcRef(val as u32)).0);
            1
        } else {
            0
        }
    }

    /// Follows forwarding pointers from `r` to the live cell.
    ///
    /// In eager mode this is only meaningful immediately after a collection
    /// (to re-derive roots); in lazy-indirection mode the interpreter calls
    /// it on every access — that check is exactly the steady-state overhead
    /// the paper attributes to JDrums/DVM-style systems.
    pub fn resolve(&self, mut r: GcRef) -> GcRef {
        let mut hops = 0;
        while self.words[r.addr()] & 1 == 1 {
            r = GcRef((self.words[r.addr()] >> 1) as u32);
            hops += 1;
            assert!(hops < 64, "forwarding chain too long; heap corrupt");
        }
        r
    }

    /// Performs a full copying collection.
    ///
    /// `roots` are the addresses of live references (from thread frames,
    /// statics, and any DSU bookkeeping); after `collect` returns, the
    /// caller must rewrite each root via [`Heap::resolve`].
    ///
    /// Layouts come from `snapshot`, built once by the caller (the
    /// registry caches one between class loads). `remap` is the resolved
    /// DSU policy: `None` for ordinary collections — the fast path, which
    /// never probes for remapped classes — or a [`RemapTable`] during
    /// updates, in which case each remapped object is duplicated per the
    /// paper's §3.4 protocol and the pair pushed onto the update log.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] if to-space overflows (possible
    /// during updates, which duplicate transformed objects).
    pub fn collect(
        &mut self,
        roots: &[GcRef],
        snapshot: &LayoutSnapshot,
        remap: Option<&RemapTable>,
    ) -> Result<GcOutcome, VmError> {
        // Monomorphize: ordinary collections run a copy loop with the
        // remap probe compiled out entirely, not just branched around.
        match remap {
            Some(table) if !table.is_empty() => {
                self.collect_impl::<true>(roots, snapshot, Some(table))
            }
            _ => self.collect_impl::<false>(roots, snapshot, None),
        }
    }

    fn collect_impl<const HAS_REMAP: bool>(
        &mut self,
        roots: &[GcRef],
        snapshot: &LayoutSnapshot,
        remap: Option<&RemapTable>,
    ) -> Result<GcOutcome, VmError> {
        let to_b = !self.active_b;
        let to_base = self.base(to_b);
        let to_limit = self.limit(to_b);
        let mut to_alloc = to_base;
        let mut outcome = GcOutcome { workers: 1, ..GcOutcome::default() };
        // Update-log entries tagged with the from-space address of the
        // original object; sorted into the canonical order at the end.
        let mut log: Vec<(u32, GcRef, GcRef)> = Vec::new();

        // Copy roots.
        for &root in roots {
            self.copy_cell::<HAS_REMAP>(
                root, &mut to_alloc, to_base, to_limit, snapshot, remap, &mut outcome, &mut log,
            )?;
        }

        // Cheney scan: one header read and one snapshot lookup per cell;
        // ref fields enumerated from the bitset via `trailing_zeros`.
        let mut scan = to_base;
        while scan < to_alloc {
            let h = self.words[scan];
            let meta = header_meta(h) as usize;
            match header_kind(h) {
                HeapKind::Object => {
                    let e = snapshot.entry(ClassId(meta as u32));
                    for wi in 0..e.ref_words() {
                        let mut bits = snapshot.bits[e.bits_start as usize + wi];
                        let word_base = scan + 1 + wi * 64;
                        while bits != 0 {
                            let slot = word_base + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let val = self.words[slot];
                            if val != 0 {
                                let new = self.copy_cell::<HAS_REMAP>(
                                    GcRef(val as u32),
                                    &mut to_alloc,
                                    to_base,
                                    to_limit,
                                    snapshot,
                                    remap,
                                    &mut outcome,
                                    &mut log,
                                )?;
                                self.words[slot] = u64::from(new.0);
                            }
                        }
                    }
                    scan += 1 + e.size_words as usize;
                }
                HeapKind::RefArray => {
                    for slot in scan + 1..scan + 1 + meta {
                        let val = self.words[slot];
                        if val != 0 {
                            let new = self.copy_cell::<HAS_REMAP>(
                                GcRef(val as u32),
                                &mut to_alloc,
                                to_base,
                                to_limit,
                                snapshot,
                                remap,
                                &mut outcome,
                                &mut log,
                            )?;
                            self.words[slot] = u64::from(new.0);
                        }
                    }
                    scan += 1 + meta;
                }
                HeapKind::PrimArray => scan += 1 + meta,
                HeapKind::Str => scan += 1 + meta.div_ceil(8),
            }
        }

        log.sort_by_key(|&(from, _, _)| from);
        outcome.update_log = log.into_iter().map(|(_, old, new)| (old, new)).collect();
        self.active_b = to_b;
        self.alloc = to_alloc;
        self.collections += 1;
        // From-space (and every forwarded header in it) is now abandoned.
        self.lazy_forwards = false;
        self.forward_headers.clear();
        Ok(outcome)
    }

    /// Copies one cell to to-space (or returns its forwarding target).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn copy_cell<const HAS_REMAP: bool>(
        &mut self,
        r: GcRef,
        to_alloc: &mut usize,
        to_base: usize,
        to_limit: usize,
        snapshot: &LayoutSnapshot,
        remap: Option<&RemapTable>,
        outcome: &mut GcOutcome,
        log: &mut Vec<(u32, GcRef, GcRef)>,
    ) -> Result<GcRef, VmError> {
        let mut addr = r.addr();
        // Chase forwarding chains, leaving `h` holding the live cell's
        // header — read exactly once. A target already in to-space is a GC
        // forward (done); a target in from-space is a pre-existing lazy
        // forward whose live cell still needs copying.
        let h = loop {
            let h = self.words[addr];
            if h & 1 == 0 {
                break h;
            }
            let t = (h >> 1) as usize;
            if t >= to_base && t < to_limit {
                return Ok(GcRef(t as u32));
            }
            addr = t;
        };

        if HAS_REMAP && header_kind(h) == HeapKind::Object {
            let class = ClassId(header_meta(h));
            if let Some(new_class) = remap.and_then(|table| table.get(class)) {
                // Paper §3.4: duplicate the object. Allocate an old-layout
                // copy (scanned normally so its fields get forwarded) and a
                // zeroed new-layout object the transformer will populate.
                let old_size = 1 + snapshot.size_words(class);
                let old_copy = self.alloc_to(old_size, to_alloc, to_limit)?;
                self.words.copy_within(addr..addr + old_size, old_copy);

                let new_size = 1 + snapshot.size_words(new_class);
                let new_obj = self.alloc_to(new_size, to_alloc, to_limit)?;
                self.words[new_obj..new_obj + new_size].fill(0);
                self.words[new_obj] = header(HeapKind::Object, new_class.0);

                self.words[addr] = ((new_obj as u64) << 1) | 1;
                outcome.copied_cells += 2;
                outcome.copied_words += old_size + new_size;
                log.push((addr as u32, GcRef(old_copy as u32), GcRef(new_obj as u32)));
                return Ok(GcRef(new_obj as u32));
            }
        }

        let size = cell_size_of(h, snapshot);
        let dst = self.alloc_to(size, to_alloc, to_limit)?;
        // Nearly all cells are a few words; fixed-size copies compile to
        // straight-line moves, where `copy_within` pays a memmove call.
        match size {
            2 => {
                self.words[dst] = self.words[addr];
                self.words[dst + 1] = self.words[addr + 1];
            }
            3 => {
                self.words[dst] = self.words[addr];
                self.words[dst + 1] = self.words[addr + 1];
                self.words[dst + 2] = self.words[addr + 2];
            }
            4 => {
                self.words[dst] = self.words[addr];
                self.words[dst + 1] = self.words[addr + 1];
                self.words[dst + 2] = self.words[addr + 2];
                self.words[dst + 3] = self.words[addr + 3];
            }
            _ if size <= 8 => {
                for i in 0..size {
                    self.words[dst + i] = self.words[addr + i];
                }
            }
            _ => self.words.copy_within(addr..addr + size, dst),
        }
        self.words[addr] = ((dst as u64) << 1) | 1;
        outcome.copied_cells += 1;
        outcome.copied_words += size;
        Ok(GcRef(dst as u32))
    }

    #[inline]
    fn alloc_to(
        &mut self,
        n: usize,
        to_alloc: &mut usize,
        to_limit: usize,
    ) -> Result<usize, VmError> {
        if *to_alloc + n > to_limit {
            return Err(VmError::OutOfMemory { requested: n });
        }
        let addr = *to_alloc;
        *to_alloc += n;
        Ok(addr)
    }

    /// Performs a full copying collection on `workers` OS threads.
    ///
    /// Semantically identical to [`Heap::collect`]: the resulting object
    /// graph, [`GcOutcome::copied_cells`]/[`GcOutcome::copied_words`]
    /// totals, and the canonical update-log order are the same as a serial
    /// collection of the same heap (only to-space *placement* differs).
    /// `workers` is clamped to `1..=MAX_GC_THREADS`; `1` delegates to the
    /// serial monomorphized path.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] if to-space overflows. As with the
    /// serial collector, the heap is left mid-copy and must be considered
    /// corrupt (update collections are the only path that can overflow,
    /// and the caller already treats a transform-phase failure as fatal).
    pub fn collect_parallel(
        &mut self,
        roots: &[GcRef],
        snapshot: &LayoutSnapshot,
        remap: Option<&RemapTable>,
        workers: usize,
    ) -> Result<GcOutcome, VmError> {
        let workers = workers.clamp(1, MAX_GC_THREADS);
        if workers == 1 {
            return self.collect(roots, snapshot, remap);
        }
        match remap {
            Some(table) if !table.is_empty() => {
                self.par_collect_impl::<true>(roots, snapshot, Some(table), workers)
            }
            _ => self.par_collect_impl::<false>(roots, snapshot, None, workers),
        }
    }

    fn par_collect_impl<const HAS_REMAP: bool>(
        &mut self,
        roots: &[GcRef],
        snapshot: &LayoutSnapshot,
        remap: Option<&RemapTable>,
        workers: usize,
    ) -> Result<GcOutcome, VmError> {
        let to_b = !self.active_b;
        let to_base = self.base(to_b);
        let to_limit = self.limit(to_b);

        let cursor = AtomicUsize::new(to_base);
        let oom = AtomicBool::new(false);
        let oom_request = AtomicUsize::new(0);
        let chunk_words = PAR_CHUNK_WORDS.min((self.semi / (workers * 4)).max(64));
        let shared = ParShared {
            words: as_atomic(&mut self.words),
            cursor: &cursor,
            to_base,
            to_limit,
            chunk_words,
            oom: &oom,
            oom_request: &oom_request,
            snapshot,
            remap,
        };

        let mut states: Vec<ParWorker> = (0..workers).map(|_| ParWorker::default()).collect();
        std::thread::scope(|scope| {
            for (w, state) in states.iter_mut().enumerate() {
                let shared = &shared;
                scope.spawn(move || {
                    // Strided root sharding: worker w takes roots[w],
                    // roots[w + workers], … Duplicate roots are fine — the
                    // claim protocol makes copying idempotent.
                    state.run::<HAS_REMAP>(shared, roots.iter().skip(w).step_by(workers));
                });
            }
        });

        if oom.load(Ordering::Relaxed) {
            return Err(VmError::OutOfMemory { requested: oom_request.load(Ordering::Relaxed) });
        }

        // Deterministic merge: fold counters in worker order with
        // saturating adds, then sort the log stripes into the canonical
        // from-space-address order the serial collector also emits.
        let mut outcome = GcOutcome { workers, ..GcOutcome::default() };
        let mut log: Vec<(u32, GcRef, GcRef)> = Vec::new();
        for state in &states {
            outcome.copied_cells = outcome.copied_cells.saturating_add(state.copied_cells);
            outcome.copied_words = outcome.copied_words.saturating_add(state.copied_words);
            log.extend_from_slice(&state.log);
        }
        log.sort_by_key(|&(from, _, _)| from);
        outcome.update_log = log.into_iter().map(|(_, old, new)| (old, new)).collect();

        self.active_b = to_b;
        self.alloc = cursor.load(Ordering::Relaxed).min(to_limit);
        self.collections += 1;
        // From-space (and every forwarded header in it) is now abandoned.
        self.lazy_forwards = false;
        self.forward_headers.clear();
        Ok(outcome)
    }
}

/// State shared by every parallel GC worker.
struct ParShared<'a> {
    /// Atomic view of the whole heap (both semispaces).
    words: &'a [AtomicU64],
    /// To-space bump cursor chunks are carved from; never exceeds
    /// `to_limit`.
    cursor: &'a AtomicUsize,
    to_base: usize,
    to_limit: usize,
    /// Preferred chunk size, scaled down for small heaps so per-worker
    /// chunk tails cannot dominate a tight to-space.
    chunk_words: usize,
    /// Set (before the failing cell's header is restored) when any worker
    /// fails to allocate, so spinners and siblings bail out promptly.
    oom: &'a AtomicBool,
    oom_request: &'a AtomicUsize,
    snapshot: &'a LayoutSnapshot,
    remap: Option<&'a RemapTable>,
}

/// Per-worker private state: bump chunk, gray stack, counters, log stripe.
#[derive(Default)]
struct ParWorker {
    /// Next free word in the current bump chunk.
    chunk: usize,
    chunk_end: usize,
    /// To-space addresses of cells this worker copied and must still scan.
    /// Private: a worker scans exactly the cells it won, so termination is
    /// simply draining the local stack — no stealing, no global quiescence
    /// protocol.
    gray: Vec<usize>,
    copied_cells: usize,
    copied_words: usize,
    /// Update-log stripe: (from-space address, old copy, new object).
    log: Vec<(u32, GcRef, GcRef)>,
}

impl ParWorker {
    /// Copies this worker's root shard, then drains the gray stack.
    /// Returns early on OOM (the shared flag is already set).
    fn run<'a, const HAS_REMAP: bool>(
        &mut self,
        shared: &ParShared<'_>,
        roots: impl Iterator<Item = &'a GcRef>,
    ) {
        for &root in roots {
            if self.copy::<HAS_REMAP>(shared, root.addr()).is_none() {
                return;
            }
        }
        while let Some(cell) = self.gray.pop() {
            if !self.scan_cell::<HAS_REMAP>(shared, cell) {
                return;
            }
        }
    }

    /// Bump-allocates `n` words from the current chunk, carving a new
    /// chunk (or an exact-fit block for oversized cells) from the shared
    /// cursor when it runs dry. The carve is a CAS loop so the cursor
    /// never overshoots `to_limit` — the final chunk simply shrinks to
    /// whatever space remains. `None` = to-space exhausted.
    fn par_alloc(&mut self, shared: &ParShared<'_>, n: usize) -> Option<usize> {
        if self.chunk + n <= self.chunk_end {
            let addr = self.chunk;
            self.chunk += n;
            return Some(addr);
        }
        let mut cur = shared.cursor.load(Ordering::Relaxed);
        loop {
            let avail = shared.to_limit.saturating_sub(cur);
            if avail < n {
                shared.oom_request.store(n, Ordering::Relaxed);
                shared.oom.store(true, Ordering::Release);
                return None;
            }
            let take = n.max(shared.chunk_words).min(avail);
            match shared.cursor.compare_exchange_weak(
                cur,
                cur + take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    if take > n {
                        self.chunk = cur + n;
                        self.chunk_end = cur + take;
                    }
                    return Some(cur);
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Returns the to-space address `from` forwards to, copying the cell
    /// if this worker wins the claim race. `None` = OOM (shared flag set).
    fn copy<const HAS_REMAP: bool>(&mut self, shared: &ParShared<'_>, from: usize) -> Option<u32> {
        let mut addr = from;
        loop {
            let h = shared.words[addr].load(Ordering::Acquire);
            if h & 1 == 1 {
                if h == BUSY {
                    // Another worker is copying this cell right now; its
                    // forward is imminent. Bail if the owner (or anyone)
                    // hit OOM — the owner restores the header *after*
                    // raising the flag, so this cannot spin forever.
                    if shared.oom.load(Ordering::Acquire) {
                        return None;
                    }
                    std::hint::spin_loop();
                    continue;
                }
                let t = (h >> 1) as usize;
                if t >= shared.to_base && t < shared.to_limit {
                    return Some(t as u32);
                }
                // Pre-existing lazy forward into from-space: chase it.
                addr = t;
                continue;
            }
            // Unforwarded: try to claim. Losing means another worker just
            // claimed or forwarded it — re-read and follow.
            if shared.words[addr]
                .compare_exchange(h, BUSY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return self.copy_claimed::<HAS_REMAP>(shared, addr, h);
            }
        }
    }

    /// Copies the claimed cell at `addr` (original header `h`) into this
    /// worker's buffer and publishes the forwarding pointer.
    fn copy_claimed<const HAS_REMAP: bool>(
        &mut self,
        shared: &ParShared<'_>,
        addr: usize,
        h: u64,
    ) -> Option<u32> {
        if HAS_REMAP && header_kind(h) == HeapKind::Object {
            let class = ClassId(header_meta(h));
            if let Some(new_class) = shared.remap.and_then(|table| table.get(class)) {
                // Paper §3.4: duplicate the object (old-layout copy the
                // owner scans normally + zeroed new-layout object).
                let old_size = 1 + shared.snapshot.size_words(class);
                let new_size = 1 + shared.snapshot.size_words(new_class);
                let Some(old_copy) = self.par_alloc(shared, old_size) else {
                    return self.abandon(shared, addr, h);
                };
                let Some(new_obj) = self.par_alloc(shared, new_size) else {
                    return self.abandon(shared, addr, h);
                };
                shared.words[old_copy].store(h, Ordering::Relaxed);
                for i in 1..old_size {
                    let w = shared.words[addr + i].load(Ordering::Relaxed);
                    shared.words[old_copy + i].store(w, Ordering::Relaxed);
                }
                shared.words[new_obj].store(header(HeapKind::Object, new_class.0), Ordering::Relaxed);
                for i in 1..new_size {
                    shared.words[new_obj + i].store(0, Ordering::Relaxed);
                }
                // Publish: racing readers acquire-load the forward, which
                // releases the payload stores above.
                shared.words[addr].store(((new_obj as u64) << 1) | 1, Ordering::Release);
                self.copied_cells += 2;
                self.copied_words += old_size + new_size;
                self.log.push((addr as u32, GcRef(old_copy as u32), GcRef(new_obj as u32)));
                // The old copy's ref fields still point into from-space;
                // the new object is all-null. Only the former needs a scan.
                self.gray.push(old_copy);
                return Some(new_obj as u32);
            }
        }

        let size = cell_size_of(h, shared.snapshot);
        let Some(dst) = self.par_alloc(shared, size) else {
            return self.abandon(shared, addr, h);
        };
        shared.words[dst].store(h, Ordering::Relaxed);
        for i in 1..size {
            let w = shared.words[addr + i].load(Ordering::Relaxed);
            shared.words[dst + i].store(w, Ordering::Relaxed);
        }
        shared.words[addr].store(((dst as u64) << 1) | 1, Ordering::Release);
        self.copied_cells += 1;
        self.copied_words += size;
        match header_kind(h) {
            HeapKind::Object | HeapKind::RefArray => self.gray.push(dst),
            HeapKind::PrimArray | HeapKind::Str => {}
        }
        Some(dst as u32)
    }

    /// Undoes a claim after an allocation failure: restores the original
    /// header so spinners observe an unforwarded cell again (they will
    /// re-claim, fail to allocate themselves, and bail via the OOM flag,
    /// which `par_alloc` raised before this runs).
    fn abandon(&mut self, shared: &ParShared<'_>, addr: usize, h: u64) -> Option<u32> {
        shared.words[addr].store(h, Ordering::Release);
        None
    }

    /// Forwards every reference field of the to-space cell this worker
    /// owns at `cell`. Returns `false` on OOM.
    fn scan_cell<const HAS_REMAP: bool>(&mut self, shared: &ParShared<'_>, cell: usize) -> bool {
        let h = shared.words[cell].load(Ordering::Relaxed);
        let meta = header_meta(h) as usize;
        let (first, len) = match header_kind(h) {
            HeapKind::Object => {
                let e = shared.snapshot.entry(ClassId(meta as u32));
                for wi in 0..e.ref_words() {
                    let mut bits = shared.snapshot.bits[e.bits_start as usize + wi];
                    let word_base = cell + 1 + wi * 64;
                    while bits != 0 {
                        let slot = word_base + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if !self.forward_slot::<HAS_REMAP>(shared, slot) {
                            return false;
                        }
                    }
                }
                return true;
            }
            HeapKind::RefArray => (cell + 1, meta),
            HeapKind::PrimArray | HeapKind::Str => (cell, 0),
        };
        for slot in first..first + len {
            if !self.forward_slot::<HAS_REMAP>(shared, slot) {
                return false;
            }
        }
        true
    }

    #[inline]
    fn forward_slot<const HAS_REMAP: bool>(&mut self, shared: &ParShared<'_>, slot: usize) -> bool {
        let val = shared.words[slot].load(Ordering::Relaxed);
        if val == 0 {
            return true;
        }
        match self.copy::<HAS_REMAP>(shared, val as usize) {
            Some(new) => {
                shared.words[slot].store(u64::from(new), Ordering::Relaxed);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test layouts: class 0 has 2 fields (second is a ref); class 1 has
    /// 3 fields (first is a ref); class 9 (the "updated" version of class
    /// 0) has 3 fields (second is a ref).
    struct TestLayouts;

    impl ClassLayouts for TestLayouts {
        fn object_size(&self, class: ClassId) -> usize {
            match class.0 {
                0 => 2,
                1 => 3,
                9 => 3,
                _ => panic!("unknown class {class}"),
            }
        }
        fn ref_map(&self, class: ClassId) -> &[bool] {
            match class.0 {
                0 => &[false, true],
                1 => &[true, false, false],
                9 => &[false, true, false],
                _ => panic!("unknown class {class}"),
            }
        }
    }

    fn snap() -> LayoutSnapshot {
        LayoutSnapshot::from_layouts(&TestLayouts, &[ClassId(0), ClassId(1), ClassId(9)])
    }

    struct RemapZeroToNine;
    impl GcRemap for RemapZeroToNine {
        fn remap(&self, class: ClassId) -> Option<ClassId> {
            (class.0 == 0).then_some(ClassId(9))
        }
    }

    fn remap09() -> RemapTable {
        RemapTable::from_policy(&RemapZeroToNine, 10)
    }

    #[test]
    fn alloc_and_access() {
        let mut heap = Heap::new(1024);
        let o = heap.alloc_object(ClassId(0), 2).unwrap();
        heap.set(o, 0, 42);
        assert_eq!(heap.get(o, 0), 42);
        assert_eq!(heap.class_of(o), ClassId(0));
        assert_eq!(heap.kind(o), HeapKind::Object);
    }

    #[test]
    fn string_roundtrip() {
        let mut heap = Heap::new(1024);
        for s in ["", "a", "hello world", "héllo wörld — ünïcode"] {
            let r = heap.alloc_string(s).unwrap();
            assert_eq!(heap.read_string(r), s);
        }
    }

    #[test]
    fn allocation_fails_when_full() {
        let mut heap = Heap::new(16);
        assert!(heap.alloc_array(false, 100).is_none());
        assert!(heap.alloc_array(false, 8).is_some());
    }

    #[test]
    fn snapshot_matches_trait_layouts() {
        let s = snap();
        for class in [ClassId(0), ClassId(1), ClassId(9)] {
            assert_eq!(s.size_words(class), TestLayouts.object_size(class));
        }
        assert_eq!(s.num_classes(), 10);
    }

    #[test]
    #[should_panic(expected = "missing from layout snapshot")]
    fn snapshot_panics_on_unknown_class() {
        snap().size_words(ClassId(5));
    }

    #[test]
    fn empty_remap_table_is_empty() {
        assert!(RemapTable::from_policy(&NoRemap, 10).is_empty());
        assert!(!remap09().is_empty());
    }

    #[test]
    fn collect_preserves_reachable_graph() {
        let mut heap = Heap::new(1024);
        let a = heap.alloc_object(ClassId(0), 2).unwrap();
        let b = heap.alloc_object(ClassId(1), 3).unwrap();
        heap.set(a, 0, 7);
        heap.set(a, 1, u64::from(b.0)); // a.field1 -> b
        heap.set(b, 1, 13);
        let s = heap.alloc_string("keep me").unwrap();
        heap.set(b, 0, u64::from(s.0)); // b.field0 -> s

        // Garbage that should be dropped.
        for _ in 0..10 {
            heap.alloc_object(ClassId(1), 3).unwrap();
        }
        let used_before = heap.used_words();

        let out = heap.collect(&[a], &snap(), None).unwrap();
        assert_eq!(out.copied_cells, 3);
        assert!(out.update_log.is_empty());

        let a2 = heap.resolve(a);
        assert_eq!(heap.get(a2, 0), 7);
        let b2 = GcRef(heap.get(a2, 1) as u32);
        assert_eq!(heap.get(b2, 1), 13);
        let s2 = GcRef(heap.get(b2, 0) as u32);
        assert_eq!(heap.read_string(s2), "keep me");
        assert!(heap.used_words() < used_before);
    }

    #[test]
    fn collect_drops_unreachable_cycles() {
        let mut heap = Heap::new(1024);
        // Two class-1 objects pointing at each other, unreachable.
        let x = heap.alloc_object(ClassId(1), 3).unwrap();
        let y = heap.alloc_object(ClassId(1), 3).unwrap();
        heap.set(x, 0, u64::from(y.0));
        heap.set(y, 0, u64::from(x.0));
        let keep = heap.alloc_string("root").unwrap();

        let out = heap.collect(&[keep], &snap(), None).unwrap();
        assert_eq!(out.copied_cells, 1);
    }

    #[test]
    fn ref_arrays_are_traced() {
        let mut heap = Heap::new(1024);
        let arr = heap.alloc_array(true, 3).unwrap();
        let s = heap.alloc_string("elem").unwrap();
        heap.set(arr, 2, u64::from(s.0));

        heap.collect(&[arr], &snap(), None).unwrap();
        let arr2 = heap.resolve(arr);
        assert_eq!(heap.len_of(arr2), 3);
        assert_eq!(heap.get(arr2, 0), 0);
        let s2 = GcRef(heap.get(arr2, 2) as u32);
        assert_eq!(heap.read_string(s2), "elem");
    }

    #[test]
    fn wide_class_multi_word_bitset_is_traced() {
        // A 130-field class with refs at 0, 63, 64, 129 exercises every
        // u64 granule boundary of the packed ref map.
        let mut wide = vec![false; 130];
        for i in [0usize, 63, 64, 129] {
            wide[i] = true;
        }
        let mut s = snap();
        s.set(ClassId(4), &wide);

        let mut heap = Heap::new(2048);
        let o = heap.alloc_object(ClassId(4), 130).unwrap();
        let mut strings = Vec::new();
        for (n, i) in [0usize, 63, 64, 129].into_iter().enumerate() {
            let r = heap.alloc_string(&format!("s{n}")).unwrap();
            heap.set(o, i, u64::from(r.0));
            strings.push(r);
        }
        // Garbage between the live strings.
        heap.alloc_object(ClassId(1), 3).unwrap();

        let out = heap.collect(&[o], &s, None).unwrap();
        assert_eq!(out.copied_cells, 5, "object + 4 strings survive");
        let o2 = heap.resolve(o);
        for (n, i) in [0usize, 63, 64, 129].into_iter().enumerate() {
            let r = GcRef(heap.get(o2, i) as u32);
            assert_eq!(heap.read_string(r), format!("s{n}"));
        }
        // Non-ref fields stayed zero.
        assert_eq!(heap.get(o2, 1), 0);
        assert_eq!(heap.get(o2, 128), 0);
    }

    #[test]
    fn remap_duplicates_and_logs_updated_objects() {
        let mut heap = Heap::new(1024);
        let o = heap.alloc_object(ClassId(0), 2).unwrap();
        heap.set(o, 0, 99);
        let s = heap.alloc_string("payload").unwrap();
        heap.set(o, 1, u64::from(s.0));

        let out = heap.collect(&[o], &snap(), Some(&remap09())).unwrap();
        assert_eq!(out.update_log.len(), 1);
        let (old_copy, new_obj) = out.update_log[0];

        // Old copy retains the old class and values, with refs forwarded.
        assert_eq!(heap.class_of(old_copy), ClassId(0));
        assert_eq!(heap.get(old_copy, 0), 99);
        let s2 = GcRef(heap.get(old_copy, 1) as u32);
        assert_eq!(heap.read_string(s2), "payload");

        // New object has the new class and zeroed fields.
        assert_eq!(heap.class_of(new_obj), ClassId(9));
        assert_eq!(heap.get(new_obj, 0), 0);
        assert_eq!(heap.get(new_obj, 1), 0);
        assert_eq!(heap.get(new_obj, 2), 0);

        // The root forwards to the NEW object (the heap switches to the
        // new version; the old copy is only reachable through the log).
        assert_eq!(heap.resolve(o), new_obj);
    }

    #[test]
    fn references_to_remapped_objects_point_at_new_version() {
        let mut heap = Heap::new(1024);
        let holder = heap.alloc_object(ClassId(1), 3).unwrap();
        let o = heap.alloc_object(ClassId(0), 2).unwrap();
        heap.set(holder, 0, u64::from(o.0));

        let out = heap.collect(&[holder], &snap(), Some(&remap09())).unwrap();
        let (_, new_obj) = out.update_log[0];
        let holder2 = heap.resolve(holder);
        assert_eq!(heap.get(holder2, 0), u64::from(new_obj.0));
    }

    #[test]
    fn two_references_to_same_remapped_object_share_new_version() {
        let mut heap = Heap::new(1024);
        let h1 = heap.alloc_object(ClassId(1), 3).unwrap();
        let h2 = heap.alloc_object(ClassId(1), 3).unwrap();
        let o = heap.alloc_object(ClassId(0), 2).unwrap();
        heap.set(h1, 0, u64::from(o.0));
        heap.set(h2, 0, u64::from(o.0));

        let out = heap.collect(&[h1, h2], &snap(), Some(&remap09())).unwrap();
        assert_eq!(out.update_log.len(), 1, "object transformed once");
        let a = heap.get(heap.resolve(h1), 0);
        let b = heap.get(heap.resolve(h2), 0);
        assert_eq!(a, b);
    }

    #[test]
    fn lazy_forward_chains_are_collapsed_by_gc() {
        let mut heap = Heap::new(1024);
        let old = heap.alloc_object(ClassId(0), 2).unwrap();
        let new = heap.alloc_object(ClassId(9), 3).unwrap();
        heap.set(new, 0, 5);
        heap.install_forward(old, new);
        assert_eq!(heap.resolve(old), new);

        // A holder still referencing the OLD address.
        let holder = heap.alloc_object(ClassId(1), 3).unwrap();
        heap.set(holder, 0, u64::from(old.0));

        heap.collect(&[holder], &snap(), None).unwrap();
        let holder2 = heap.resolve(holder);
        let target = GcRef(heap.get(holder2, 0) as u32);
        assert_eq!(heap.class_of(target), ClassId(9));
        assert_eq!(heap.get(target, 0), 5);
    }

    #[test]
    fn collect_reports_oom_when_update_duplication_overflows() {
        // Fill >half the semispace with remapped objects: duplication
        // cannot fit.
        let mut heap = Heap::new(256);
        let mut roots = Vec::new();
        while let Some(o) = heap.alloc_object(ClassId(0), 2) {
            roots.push(o);
        }
        let err = heap.collect(&roots, &snap(), Some(&remap09())).unwrap_err();
        assert!(matches!(err, VmError::OutOfMemory { .. }), "{err}");
    }

    /// SplitMix64, inlined so these tests stay registry- and crate-free.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_B9F9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Builds a deterministic mixed graph (objects of classes 0/1,
    /// strings, shared edges, cycles, interleaved garbage) and returns the
    /// roots. Each object carries a unique id in a non-ref field so update
    /// logs can be compared across collections by content, not address.
    fn build_mixed_graph(heap: &mut Heap, seed: u64, n: usize) -> Vec<GcRef> {
        let mut state = seed;
        let mut nodes = Vec::new();
        for i in 0..n {
            let r = splitmix(&mut state);
            let node = match r % 3 {
                0 => {
                    let o = heap.alloc_object(ClassId(0), 2).unwrap();
                    heap.set(o, 0, 1_000 + i as u64);
                    o
                }
                1 => {
                    let o = heap.alloc_object(ClassId(1), 3).unwrap();
                    heap.set(o, 1, 1_000 + i as u64);
                    o
                }
                _ => heap.alloc_string(&format!("s{i}")).unwrap(),
            };
            nodes.push(node);
            if r.is_multiple_of(5) {
                heap.alloc_object(ClassId(1), 3).unwrap(); // garbage
            }
        }
        // Wire edges (shared targets, self-loops, cycles all possible).
        for &node in &nodes {
            let target = nodes[(splitmix(&mut state) % nodes.len() as u64) as usize];
            match heap.kind(node) {
                HeapKind::Object if heap.class_of(node) == ClassId(0) => {
                    heap.set(node, 1, u64::from(target.0));
                }
                HeapKind::Object => heap.set(node, 0, u64::from(target.0)),
                _ => {}
            }
        }
        let mut roots = vec![nodes[0]];
        for _ in 0..5 {
            roots.push(nodes[(splitmix(&mut state) % nodes.len() as u64) as usize]);
        }
        roots
    }

    #[test]
    fn parallel_totals_match_serial_exactly_on_fixed_seed() {
        // The per-worker counters are folded with saturating adds; the
        // claim protocol copies each live cell exactly once, so the folded
        // totals must equal the serial collector's on the same graph.
        let serial = {
            let mut heap = Heap::new(8192);
            let roots = build_mixed_graph(&mut heap, 0xDEAD_BEEF, 300);
            heap.collect(&roots, &snap(), None).unwrap()
        };
        assert_eq!(serial.workers, 1);
        for workers in 2..=MAX_GC_THREADS {
            let mut heap = Heap::new(8192);
            let roots = build_mixed_graph(&mut heap, 0xDEAD_BEEF, 300);
            let par = heap.collect_parallel(&roots, &snap(), None, workers).unwrap();
            assert_eq!(par.workers, workers);
            assert_eq!(par.copied_cells, serial.copied_cells, "{workers} workers");
            assert_eq!(par.copied_words, serial.copied_words, "{workers} workers");
            assert!(par.update_log.is_empty());
        }
    }

    #[test]
    fn parallel_update_log_matches_serial_order() {
        // Canonical from-address ordering: entry i of the parallel log
        // must describe the same original object as entry i of the serial
        // log, identified by the unique id planted in field 0.
        let ids = |heap: &Heap, out: &GcOutcome| -> Vec<u64> {
            out.update_log
                .iter()
                .map(|&(old, new)| {
                    assert_eq!(heap.class_of(old), ClassId(0));
                    assert_eq!(heap.class_of(new), ClassId(9));
                    heap.get(old, 0)
                })
                .collect()
        };
        let serial_ids = {
            let mut heap = Heap::new(8192);
            let roots = build_mixed_graph(&mut heap, 42, 200);
            let out = heap.collect(&roots, &snap(), Some(&remap09())).unwrap();
            ids(&heap, &out)
        };
        assert!(!serial_ids.is_empty(), "seed must produce remapped objects");
        for workers in [2, 4, 7] {
            let mut heap = Heap::new(8192);
            let roots = build_mixed_graph(&mut heap, 42, 200);
            let out = heap.collect_parallel(&roots, &snap(), Some(&remap09()), workers).unwrap();
            assert_eq!(ids(&heap, &out), serial_ids, "{workers} workers");
        }
    }

    #[test]
    fn parallel_with_one_worker_delegates_to_serial() {
        let mut heap = Heap::new(1024);
        let o = heap.alloc_object(ClassId(0), 2).unwrap();
        heap.set(o, 0, 7);
        let out = heap.collect_parallel(&[o], &snap(), None, 1).unwrap();
        assert_eq!(out.workers, 1);
        assert_eq!(heap.get(heap.resolve(o), 0), 7);
    }

    #[test]
    fn parallel_preserves_graph_and_remap_semantics() {
        let mut heap = Heap::new(1024);
        let holder = heap.alloc_object(ClassId(1), 3).unwrap();
        let o = heap.alloc_object(ClassId(0), 2).unwrap();
        heap.set(o, 0, 99);
        let s = heap.alloc_string("payload").unwrap();
        heap.set(o, 1, u64::from(s.0));
        heap.set(holder, 0, u64::from(o.0));

        let out = heap.collect_parallel(&[holder], &snap(), Some(&remap09()), 4).unwrap();
        assert_eq!(out.update_log.len(), 1);
        let (old_copy, new_obj) = out.update_log[0];
        assert_eq!(heap.class_of(old_copy), ClassId(0));
        assert_eq!(heap.get(old_copy, 0), 99);
        assert_eq!(heap.read_string(GcRef(heap.get(old_copy, 1) as u32)), "payload");
        assert_eq!(heap.class_of(new_obj), ClassId(9));
        assert_eq!(heap.get(heap.resolve(holder), 0), u64::from(new_obj.0));
    }

    #[test]
    fn parallel_collect_reports_oom() {
        let mut heap = Heap::new(256);
        let mut roots = Vec::new();
        while let Some(o) = heap.alloc_object(ClassId(0), 2) {
            roots.push(o);
        }
        let err = heap.collect_parallel(&roots, &snap(), Some(&remap09()), 4).unwrap_err();
        assert!(matches!(err, VmError::OutOfMemory { .. }), "{err}");
    }

    #[test]
    fn back_to_back_collections_flip_spaces() {
        let mut heap = Heap::new(1024);
        let o = heap.alloc_object(ClassId(0), 2).unwrap();
        heap.set(o, 0, 1);
        heap.collect(&[o], &snap(), None).unwrap();
        let o1 = heap.resolve(o);
        heap.collect(&[o1], &snap(), None).unwrap();
        let o2 = heap.resolve(o1);
        assert_eq!(heap.get(o2, 0), 1);
        assert_eq!(heap.collections(), 2);
    }
}
