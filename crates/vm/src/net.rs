//! Simulated network substrate.
//!
//! The paper drives Jetty with `httperf` over a LAN; this module is the
//! closest in-process equivalent: line-oriented connections between
//! host-side clients (the workload drivers, written in Rust) and guest
//! servers (written in MJ, blocking in `Net.accept`/`Net.readLine`).
//! Latency and throughput measured across this substrate have the same
//! *comparative* meaning as the paper's Figure 5 — the same requests cross
//! the same queues in every configuration.

use std::collections::{HashMap, VecDeque};

/// Identifier of a guest listener (returned by `Net.listen`).
pub type ListenerId = usize;
/// Identifier of a connection (shared by guest and client sides).
pub type ConnId = usize;

/// Outcome of a guest-side read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuestRead {
    /// A line was dequeued.
    Line(String),
    /// The client closed its end and the queue is drained.
    Eof,
    /// Nothing available yet: the guest thread must block.
    WouldBlock,
}

#[derive(Debug, Default)]
struct Listener {
    backlog: VecDeque<ConnId>,
}

/// One bidirectional, line-oriented connection.
#[derive(Debug, Default)]
struct Conn {
    to_guest: VecDeque<String>,
    to_client: VecDeque<String>,
    closed_by_guest: bool,
    closed_by_client: bool,
}

/// The network: listeners, backlogs and connections.
#[derive(Debug, Default)]
pub struct Net {
    by_port: HashMap<u16, ListenerId>,
    listeners: Vec<Listener>,
    conns: Vec<Conn>,
}

impl Net {
    /// Creates an empty network.
    pub fn new() -> Self {
        Net::default()
    }

    // ---- guest side ------------------------------------------------------

    /// Guest `Net.listen(port)`: registers a listener. Listening twice on a
    /// port returns the same listener.
    pub fn listen(&mut self, port: u16) -> ListenerId {
        if let Some(&id) = self.by_port.get(&port) {
            return id;
        }
        let id = self.listeners.len();
        self.listeners.push(Listener::default());
        self.by_port.insert(port, id);
        id
    }

    /// Guest `Net.accept`: takes a pending connection, if any.
    pub fn try_accept(&mut self, listener: ListenerId) -> Option<ConnId> {
        self.listeners.get_mut(listener)?.backlog.pop_front()
    }

    /// Whether a listener has a pending connection (scheduler wake check).
    pub fn has_pending(&self, listener: ListenerId) -> bool {
        self.listeners.get(listener).is_some_and(|l| !l.backlog.is_empty())
    }

    /// Guest `Net.readLine`.
    pub fn guest_read(&mut self, conn: ConnId) -> GuestRead {
        let Some(c) = self.conns.get_mut(conn) else { return GuestRead::WouldBlock };
        match c.to_guest.pop_front() {
            Some(line) => GuestRead::Line(line),
            None if c.closed_by_client => GuestRead::Eof,
            None => GuestRead::WouldBlock,
        }
    }

    /// Puts a line back at the front of the guest's queue (used when the
    /// VM must retry a read after a GC).
    pub fn guest_unread(&mut self, conn: ConnId, line: String) {
        if let Some(c) = self.conns.get_mut(conn) {
            c.to_guest.push_front(line);
        }
    }

    /// Whether a guest read would make progress (wake check).
    pub fn guest_readable(&self, conn: ConnId) -> bool {
        self.conns
            .get(conn)
            .is_some_and(|c| !c.to_guest.is_empty() || c.closed_by_client)
    }

    /// Guest `Net.write`.
    pub fn guest_write(&mut self, conn: ConnId, line: String) {
        if let Some(c) = self.conns.get_mut(conn) {
            if !c.closed_by_guest {
                c.to_client.push_back(line);
            }
        }
    }

    /// Guest `Net.close`.
    pub fn guest_close(&mut self, conn: ConnId) {
        if let Some(c) = self.conns.get_mut(conn) {
            c.closed_by_guest = true;
        }
    }

    // ---- client (host/workload) side ---------------------------------------

    /// Whether something listens on `port`.
    pub fn has_listener(&self, port: u16) -> bool {
        self.by_port.contains_key(&port)
    }

    /// Connects a client to `port`. Returns `None` when nothing listens.
    pub fn client_connect(&mut self, port: u16) -> Option<ConnId> {
        let &listener = self.by_port.get(&port)?;
        let id = self.conns.len();
        self.conns.push(Conn::default());
        self.listeners[listener].backlog.push_back(id);
        Some(id)
    }

    /// Sends a line to the guest.
    pub fn client_send(&mut self, conn: ConnId, line: impl Into<String>) {
        if let Some(c) = self.conns.get_mut(conn) {
            if !c.closed_by_client {
                c.to_guest.push_back(line.into());
            }
        }
    }

    /// Receives a line from the guest, if one is queued.
    pub fn client_recv(&mut self, conn: ConnId) -> Option<String> {
        self.conns.get_mut(conn)?.to_client.pop_front()
    }

    /// Whether the guest has closed its end (and output is drained).
    pub fn client_at_eof(&self, conn: ConnId) -> bool {
        self.conns
            .get(conn)
            .is_some_and(|c| c.closed_by_guest && c.to_client.is_empty())
    }

    /// Closes the client end.
    pub fn client_close(&mut self, conn: ConnId) {
        if let Some(c) = self.conns.get_mut(conn) {
            c.closed_by_client = true;
        }
    }

    /// Total connections ever created (diagnostics).
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_accept_exchange() {
        let mut net = Net::new();
        let l = net.listen(8080);
        assert!(net.try_accept(l).is_none());
        let c = net.client_connect(8080).unwrap();
        assert!(net.has_pending(l));
        let g = net.try_accept(l).unwrap();
        assert_eq!(g, c);

        net.client_send(c, "GET /");
        assert_eq!(net.guest_read(g), GuestRead::Line("GET /".to_string()));
        assert_eq!(net.guest_read(g), GuestRead::WouldBlock, "no data: guest must block");

        net.guest_write(g, "200 OK".to_string());
        assert_eq!(net.client_recv(c), Some("200 OK".to_string()));
        assert_eq!(net.client_recv(c), None);
    }

    #[test]
    fn connect_without_listener_fails() {
        let mut net = Net::new();
        assert!(net.client_connect(9999).is_none());
    }

    #[test]
    fn close_semantics() {
        let mut net = Net::new();
        net.listen(1);
        let c = net.client_connect(1).unwrap();
        net.client_send(c, "last");
        net.client_close(c);
        // Guest drains the queue, then observes EOF.
        assert_eq!(net.guest_read(c), GuestRead::Line("last".to_string()));
        assert_eq!(net.guest_read(c), GuestRead::Eof);

        net.guest_write(c, "ignored?".to_string());
        net.guest_close(c);
        assert!(!net.client_at_eof(c), "pending output first");
        net.client_recv(c);
        assert!(net.client_at_eof(c));
    }

    #[test]
    fn listen_twice_same_port_shares_listener() {
        let mut net = Net::new();
        assert_eq!(net.listen(80), net.listen(80));
    }

    #[test]
    fn guest_readable_reflects_state() {
        let mut net = Net::new();
        net.listen(2);
        let c = net.client_connect(2).unwrap();
        assert!(!net.guest_readable(c));
        net.client_send(c, "x");
        assert!(net.guest_readable(c));
    }
}
