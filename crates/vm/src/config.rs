//! VM configuration.

/// Sentinel for [`VmConfig::gc_threads`]: pick the worker count per
/// collection from the live-heap size (see
/// [`VmConfig::resolve_gc_workers`]).
pub const GC_THREADS_AUTO: usize = 0;

/// Live-heap size (in words) below which an adaptive collection runs
/// serially. BENCH_gc shows parallel copying *losing* to the serial path
/// up through ~300k copied words (51 vs 21 ns/object at 5k objects;
/// still behind at 20k objects / 140k words copied) — per-worker chunk
/// carving and the claim protocol dominate until there is real copy work
/// to amortize them. 1 Mi words (8 MiB live) leaves margin above the
/// measured crossover region.
pub const PARALLEL_GC_MIN_WORDS: usize = 1 << 20;

/// Tuning knobs for a [`Vm`](crate::Vm).
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// Words per semispace. Total heap is twice this (plus one reserved
    /// word), matching the paper's Jikes RVM semi-space collector setup.
    pub semispace_words: usize,
    /// Interpreter steps per scheduler slice; threads only actually stop at
    /// the first *yield point* (method entry/exit or loop back-edge) at or
    /// after the quantum, reproducing safe-point-based scheduling.
    pub quantum: usize,
    /// Invocations after which a baseline-compiled method is recompiled by
    /// the optimizing tier (with inlining).
    pub opt_threshold: u32,
    /// Maximum callee bytecode length eligible for inlining.
    pub inline_max_len: usize,
    /// Maximum inlining depth.
    pub inline_max_depth: usize,
    /// Whether the optimizing tier runs at all.
    pub enable_opt: bool,
    /// Maximum guest call-stack depth per thread.
    pub max_stack_depth: usize,
    /// Echo `Sys.print` output to the host's stdout as well as buffering it.
    pub echo_output: bool,
    /// Lazy-indirection DSU baseline (JDrums/DVM-style, paper §5): every
    /// field access and virtual dispatch performs a forwarding check so
    /// objects can be migrated on first touch, imposing steady-state
    /// overhead. The default (eager, GC-based) mode never pays this cost.
    pub lazy_indirection: bool,
    /// Lazy migration: commit updates with an O(roots) pause instead of a
    /// stop-the-world full-heap update-GC. Changed classes are marked
    /// version-pending; the interpreter's reference loads go through a
    /// read barrier that transforms stale objects on first touch, and a
    /// background scavenger (stepped by the update controller) transforms
    /// the untouched remainder. When the epoch completes the heap flips
    /// back to the barrier-free fast path, so steady-state overhead is
    /// zero outside an epoch — unlike [`lazy_indirection`], which pays the
    /// check forever. Mutually exclusive with `lazy_indirection`.
    ///
    /// [`lazy_indirection`]: VmConfig::lazy_indirection
    pub lazy_migration: bool,
    /// The steady-state dispatch fast path: per-thread inline caches for
    /// `CallVirtual`/`CallDirect` (guarded by the registry's dispatch
    /// epoch — every registry mutation that can change dispatch
    /// invalidates all caches at once) plus call-frame vector recycling.
    /// On by default; off holds the honest stock baseline for the
    /// differential oracle and Fig. 5's "stock" configuration.
    pub enable_inline_caches: bool,
    /// The template-JIT tier: hot methods are recompiled into
    /// superinstruction-fused threaded code ([`crate::jit2`]), promoted by
    /// invocation counts plus loop-trip counts so loopy methods that are
    /// rarely *called* still get compiled (via OSR-in at a back-edge).
    /// Fused code bakes in resolved offsets, so it revalidates against
    /// [`Registry::code_epoch`](crate::registry::Registry::code_epoch) at
    /// method entry and loop back-edges and deopts to fresh base code when
    /// its method was invalidated or replaced. Off holds the interpreted
    /// baseline for the jit differential oracle and the v1 interpbench
    /// rows.
    pub enable_jit: bool,
    /// Combined invocation + loop-trip count after which a method is
    /// promoted to the template-JIT tier.
    pub jit_threshold: u32,
    /// OS worker threads for the copying collector (clamped to
    /// `1..=`[`MAX_GC_THREADS`](crate::heap::MAX_GC_THREADS)). `1` runs
    /// the serial path; any setting produces bit-identical post-GC state
    /// (same graph, same canonical update-log order, same stats) — only
    /// wall-clock time and to-space placement differ. The sentinel
    /// [`GC_THREADS_AUTO`] (`0`, `--gc-threads auto` on the CLI) defers
    /// the choice to collection time: serial below
    /// [`PARALLEL_GC_MIN_WORDS`] live words, [`default_gc_threads`]
    /// workers above it.
    ///
    /// [`default_gc_threads`]: VmConfig::default_gc_threads
    pub gc_threads: usize,
}

impl VmConfig {
    /// A small heap suitable for unit tests (1 MiB semispaces).
    pub fn small() -> Self {
        VmConfig { semispace_words: 128 * 1024, ..VmConfig::default() }
    }

    /// Default GC parallelism: one worker per available core, capped at
    /// [`MAX_GC_THREADS`](crate::heap::MAX_GC_THREADS).
    pub fn default_gc_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get().min(crate::heap::MAX_GC_THREADS))
            .unwrap_or(1)
    }

    /// Worker count for a collection of `live_words` live heap words:
    /// the explicit `gc_threads` setting, or — under [`GC_THREADS_AUTO`]
    /// — serial below the [`PARALLEL_GC_MIN_WORDS`] crossover and
    /// [`VmConfig::default_gc_threads`] at or above it. Worker choice
    /// never affects post-GC state (the parallel collector is
    /// bit-identical to serial), so adapting per collection is purely a
    /// wall-clock decision.
    pub fn resolve_gc_workers(&self, live_words: usize) -> usize {
        match self.gc_threads {
            GC_THREADS_AUTO => {
                if live_words < PARALLEL_GC_MIN_WORDS {
                    1
                } else {
                    VmConfig::default_gc_threads()
                }
            }
            n => n,
        }
    }
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            // 16 MiB semispaces by default.
            semispace_words: 2 * 1024 * 1024,
            quantum: 4_000,
            opt_threshold: 100,
            inline_max_len: 24,
            inline_max_depth: 3,
            enable_opt: true,
            max_stack_depth: 2_048,
            echo_output: false,
            lazy_indirection: false,
            lazy_migration: false,
            enable_inline_caches: true,
            enable_jit: true,
            jit_threshold: 400,
            gc_threads: VmConfig::default_gc_threads(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = VmConfig::default();
        assert!(c.semispace_words > 0);
        assert!(c.quantum > 0);
        assert!(c.enable_opt);
        assert!(!c.lazy_indirection);
        assert!(!c.lazy_migration);
        assert!(c.enable_inline_caches);
        assert!(c.enable_jit);
        assert!(c.jit_threshold > 0);
    }

    #[test]
    fn gc_threads_default_is_in_clamp_range() {
        let c = VmConfig::default();
        assert!((1..=crate::heap::MAX_GC_THREADS).contains(&c.gc_threads));
    }

    #[test]
    fn auto_gc_threads_crosses_over_on_live_heap_size() {
        let auto = VmConfig { gc_threads: GC_THREADS_AUTO, ..VmConfig::default() };
        // Below the crossover the measured parallel overhead dominates:
        // auto must run serial.
        assert_eq!(auto.resolve_gc_workers(0), 1);
        assert_eq!(auto.resolve_gc_workers(PARALLEL_GC_MIN_WORDS - 1), 1);
        // At and above it, auto fans out to the default worker count.
        assert_eq!(auto.resolve_gc_workers(PARALLEL_GC_MIN_WORDS), VmConfig::default_gc_threads());
        assert_eq!(auto.resolve_gc_workers(usize::MAX), VmConfig::default_gc_threads());

        // An explicit setting is an override, not a hint.
        let fixed = VmConfig { gc_threads: 3, ..VmConfig::default() };
        assert_eq!(fixed.resolve_gc_workers(0), 3);
        assert_eq!(fixed.resolve_gc_workers(usize::MAX), 3);
    }
}
