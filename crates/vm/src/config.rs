//! VM configuration.

/// Tuning knobs for a [`Vm`](crate::Vm).
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// Words per semispace. Total heap is twice this (plus one reserved
    /// word), matching the paper's Jikes RVM semi-space collector setup.
    pub semispace_words: usize,
    /// Interpreter steps per scheduler slice; threads only actually stop at
    /// the first *yield point* (method entry/exit or loop back-edge) at or
    /// after the quantum, reproducing safe-point-based scheduling.
    pub quantum: usize,
    /// Invocations after which a baseline-compiled method is recompiled by
    /// the optimizing tier (with inlining).
    pub opt_threshold: u32,
    /// Maximum callee bytecode length eligible for inlining.
    pub inline_max_len: usize,
    /// Maximum inlining depth.
    pub inline_max_depth: usize,
    /// Whether the optimizing tier runs at all.
    pub enable_opt: bool,
    /// Maximum guest call-stack depth per thread.
    pub max_stack_depth: usize,
    /// Echo `Sys.print` output to the host's stdout as well as buffering it.
    pub echo_output: bool,
    /// Lazy-indirection DSU baseline (JDrums/DVM-style, paper §5): every
    /// field access and virtual dispatch performs a forwarding check so
    /// objects can be migrated on first touch, imposing steady-state
    /// overhead. The default (eager, GC-based) mode never pays this cost.
    pub lazy_indirection: bool,
}

impl VmConfig {
    /// A small heap suitable for unit tests (1 MiB semispaces).
    pub fn small() -> Self {
        VmConfig { semispace_words: 128 * 1024, ..VmConfig::default() }
    }
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            // 16 MiB semispaces by default.
            semispace_words: 2 * 1024 * 1024,
            quantum: 4_000,
            opt_threshold: 100,
            inline_max_len: 24,
            inline_max_depth: 3,
            enable_opt: true,
            max_stack_depth: 2_048,
            echo_output: false,
            lazy_indirection: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = VmConfig::default();
        assert!(c.semispace_words > 0);
        assert!(c.quantum > 0);
        assert!(c.enable_opt);
        assert!(!c.lazy_indirection);
    }
}
