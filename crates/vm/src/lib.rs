//! The managed runtime the JVolve reproduction is built on.
//!
//! This crate is the stand-in for Jikes RVM: a word-addressed semi-space
//! copying [heap], a class [registry] with object layouts, dispatch tables
//! (TIBs) and a static table (JTOC), a three-tier [JIT model](jit) (base,
//! opt, and a superinstruction-fusing [template JIT](jit2)) whose compiled
//! code bakes in field offsets, an [interpreter](interp) for the
//! resolved code with yield points at method entries/exits and loop
//! back-edges, a cooperative green-[thread] scheduler, a simulated
//! [network](net), return barriers, and on-stack replacement.
//!
//! The dynamic-software-updating *driver* lives in the `jvolve` crate; the
//! mechanisms it composes (update-GC with object duplication and update
//! log, transformer execution with cycle detection, class renaming and
//! invalidation) are exposed from [`Vm`].
//!
//! # Example
//!
//! ```
//! use jvolve_vm::{Vm, VmConfig};
//!
//! let mut vm = Vm::new(VmConfig::small());
//! vm.load_source(
//!     "class Main {
//!        static method main(): void { Sys.print(\"hi \" + Str.fromInt(41 + 1)); }
//!      }",
//! )?;
//! vm.spawn("Main", "main")?;
//! vm.run_to_completion(1_000);
//! assert_eq!(vm.output(), ["hi 42"]);
//! # Ok::<(), jvolve_vm::VmError>(())
//! ```

pub mod compiled;
pub mod config;
pub mod error;
pub mod heap;
pub mod icache;
pub mod ids;
pub mod interp;
pub mod jit;
pub mod jit2;
pub mod lazy;
pub mod natives;
pub mod net;
pub mod registry;
pub mod thread;
pub mod value;
mod vm;

pub use config::{VmConfig, GC_THREADS_AUTO, PARALLEL_GC_MIN_WORDS};
pub use error::VmError;
pub use ids::{ClassId, MethodId, ThreadId};
pub use lazy::{CollapseOutcome, LazyStage, ScanOutcome, ScavengeOutcome, MAX_TRANSFORMER_DEPTH};
pub use registry::{ClassMethodsSnapshot, RegistryMark};
pub use value::{GcRef, Value};
pub use vm::{SliceOutcome, SliceReport, Vm, VmStats};
