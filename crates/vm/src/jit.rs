//! The (simulated) JIT: baseline, optimizing, and template compilers.
//!
//! The **baseline compiler** resolves symbolic bytecode 1:1 into
//! [`RInstr`]s, baking field offsets, static slots, TIB slots, instance
//! sizes, and direct-call targets — the analogue of Jikes RVM's
//! base-compiled machine code. Because the mapping is 1:1, base-compiled
//! frames are OSR-capable: the pc and locals transfer directly to a
//! recompilation (paper §3.2).
//!
//! The **optimizing compiler** additionally inlines small statically-bound
//! callees (static methods, constructors, `super` calls) up to a depth
//! limit, recording every inlined method so the DSU restricted-set
//! analysis can extend restrictions to inlining callers (paper §3.2).
//!
//! The **template JIT** ([`CompileLevel::Jit`]) resolves 1:1 like the
//! baseline and then peephole-fuses the stream into superinstructions
//! ([`crate::jit2`]). It deliberately does *not* inline: fused frames must
//! deopt back to plain base code mid-method when an update invalidates
//! them, and the fused-index → base-pc mapping is only exact when the
//! underlying stream is the 1:1 one. Cross-method win comes from the leaf
//! fast path instead (the interpreter runs tiny call-free callees inline
//! at fused call sites without pushing a frame).

use std::sync::Arc;

use jvolve_classfile::bytecode::Instr;

use crate::compiled::{CompileLevel, CompiledMethod, RInstr};
use crate::config::VmConfig;
use crate::error::VmError;
use crate::ids::{ClassId, MethodId};
use crate::registry::Registry;

/// Compiles `mid` at the requested tier.
///
/// # Errors
///
/// Returns [`VmError::ResolutionError`] if a symbolic reference cannot be
/// resolved (impossible for verified code against a consistent registry —
/// but exactly what *would* happen if stale code ran against updated
/// metadata, hence the invalidation protocol).
pub fn compile(
    registry: &Registry,
    mid: MethodId,
    level: CompileLevel,
    config: &VmConfig,
) -> Result<CompiledMethod, VmError> {
    let info = registry.method(mid);
    let def = &info.def;
    let code = def.code.as_ref().ok_or_else(|| VmError::ResolutionError {
        message: format!("method {} has no bytecode", info.name),
    })?;

    match level {
        CompileLevel::Base => {
            let (mut rcode, referenced) = resolve_code(registry, &code.instrs)?;
            let call_sites = assign_call_sites(&mut rcode);
            let leaf = crate::jit2::is_leaf(&rcode);
            Ok(CompiledMethod {
                method: mid,
                level: CompileLevel::Base,
                code: rcode,
                max_locals: code.max_locals,
                inlined: Vec::new(),
                referenced_classes: referenced,
                invocations: Default::default(),
                loop_trips: Default::default(),
                call_sites,
                fused: None,
                leaf,
            })
        }
        CompileLevel::Jit => {
            // Resolve 1:1 exactly like the baseline, number the call
            // sites over that stream (fusion preserves call ops and
            // their order, so the ids stay dense), then fuse. The fused
            // stream *is* the method body; the base body is retained in
            // the fusion metadata as the deopt target — swapping a frame
            // onto it at the mapped pc is exact and semantically a no-op.
            let (mut rcode, referenced) = resolve_code(registry, &code.instrs)?;
            let call_sites = assign_call_sites(&mut rcode);
            let base = Arc::new(CompiledMethod {
                method: mid,
                level: CompileLevel::Base,
                leaf: crate::jit2::is_leaf(&rcode),
                code: rcode,
                max_locals: code.max_locals,
                inlined: Vec::new(),
                referenced_classes: referenced.clone(),
                invocations: Default::default(),
                loop_trips: Default::default(),
                call_sites,
                fused: None,
            });
            let fusion = crate::jit2::fuse(&base.code);
            let leaf = crate::jit2::is_leaf(&fusion.code);
            Ok(CompiledMethod {
                method: mid,
                level: CompileLevel::Jit,
                code: fusion.code,
                max_locals: code.max_locals,
                inlined: Vec::new(),
                referenced_classes: referenced,
                invocations: Default::default(),
                loop_trips: Default::default(),
                call_sites,
                fused: Some(Arc::new(crate::jit2::FusedCode {
                    base,
                    base_pc: fusion.base_pc,
                    valid_epoch: std::sync::atomic::AtomicU64::new(registry.code_epoch()),
                    fused_count: fusion.fused_count,
                })),
                leaf,
            })
        }
        CompileLevel::Opt => {
            let mut next_local = code.max_locals;
            let mut inlined = Vec::new();
            let mut chain = vec![mid];
            let expanded = expand(
                registry,
                &code.instrs,
                config,
                0,
                &mut chain,
                &mut inlined,
                &mut next_local,
                0,
            );
            let (mut rcode, referenced) = resolve_code(registry, &expanded)?;
            let call_sites = assign_call_sites(&mut rcode);
            let leaf = crate::jit2::is_leaf(&rcode);
            Ok(CompiledMethod {
                method: mid,
                level: CompileLevel::Opt,
                code: rcode,
                max_locals: next_local,
                inlined,
                referenced_classes: referenced,
                invocations: Default::default(),
                loop_trips: Default::default(),
                call_sites,
                fused: None,
                leaf,
            })
        }
    }
}

/// Numbers every call site sequentially over the *final* instruction
/// sequence (after inlining dropped or duplicated symbolic call sites),
/// returning the count. The interpreter's per-thread inline-cache rows
/// are indexed by these ids, so they must be dense and code-relative.
fn assign_call_sites(code: &mut [RInstr]) -> u32 {
    let mut next = 0u32;
    for instr in code {
        match instr {
            RInstr::CallVirtual { site, .. } | RInstr::CallDirect { site, .. } => {
                *site = next;
                next += 1;
            }
            _ => {}
        }
    }
    next
}

/// Resolves a symbolic instruction sequence (1:1).
fn resolve_code(
    registry: &Registry,
    instrs: &[Instr],
) -> Result<(Vec<RInstr>, Vec<ClassId>), VmError> {
    let mut out = Vec::with_capacity(instrs.len());
    let mut referenced: Vec<ClassId> = Vec::new();
    let touch = |referenced: &mut Vec<ClassId>, id: ClassId| {
        if !referenced.contains(&id) {
            referenced.push(id);
        }
    };
    let class_id = |name: &jvolve_classfile::ClassName| {
        registry.class_id(name).ok_or_else(|| VmError::ResolutionError {
            message: format!("unknown class {name}"),
        })
    };

    for instr in instrs {
        let r = match instr {
            Instr::ConstInt(v) => RInstr::ConstInt(*v),
            Instr::ConstBool(v) => RInstr::ConstBool(*v),
            Instr::ConstStr(s) => RInstr::ConstStr(Arc::from(s.as_str())),
            Instr::ConstNull => RInstr::ConstNull,
            Instr::Load(s) => RInstr::Load(*s),
            Instr::Store(s) => RInstr::Store(*s),
            Instr::Add => RInstr::Add,
            Instr::Sub => RInstr::Sub,
            Instr::Mul => RInstr::Mul,
            Instr::Div => RInstr::Div,
            Instr::Rem => RInstr::Rem,
            Instr::Neg => RInstr::Neg,
            Instr::CmpEq => RInstr::CmpEq,
            Instr::CmpNe => RInstr::CmpNe,
            Instr::CmpLt => RInstr::CmpLt,
            Instr::CmpLe => RInstr::CmpLe,
            Instr::CmpGt => RInstr::CmpGt,
            Instr::CmpGe => RInstr::CmpGe,
            Instr::Not => RInstr::Not,
            Instr::BoolEq => RInstr::BoolEq,
            Instr::RefEq => RInstr::RefEq,
            Instr::RefNe => RInstr::RefNe,
            Instr::StrConcat => RInstr::StrConcat,
            Instr::StrEq => RInstr::StrEq,
            Instr::New(name) => {
                let id = class_id(name)?;
                touch(&mut referenced, id);
                let size = registry.class(id).layout.len();
                RInstr::New { class: id, size: size as u16 }
            }
            Instr::GetField { class, field } => {
                let id = class_id(class)?;
                touch(&mut referenced, id);
                let (offset, is_ref) =
                    registry.field_offset(id, field).ok_or_else(|| VmError::ResolutionError {
                        message: format!("unknown field {class}.{field}"),
                    })?;
                RInstr::GetField { offset, is_ref }
            }
            Instr::PutField { class, field } => {
                let id = class_id(class)?;
                touch(&mut referenced, id);
                let (offset, _) =
                    registry.field_offset(id, field).ok_or_else(|| VmError::ResolutionError {
                        message: format!("unknown field {class}.{field}"),
                    })?;
                RInstr::PutField { offset }
            }
            Instr::GetStatic { class, field } => {
                let id = class_id(class)?;
                touch(&mut referenced, id);
                let (slot, is_ref) =
                    registry.static_slot(id, field).ok_or_else(|| VmError::ResolutionError {
                        message: format!("unknown static field {class}.{field}"),
                    })?;
                RInstr::GetStatic { slot, is_ref }
            }
            Instr::PutStatic { class, field } => {
                let id = class_id(class)?;
                touch(&mut referenced, id);
                let (slot, _) =
                    registry.static_slot(id, field).ok_or_else(|| VmError::ResolutionError {
                        message: format!("unknown static field {class}.{field}"),
                    })?;
                RInstr::PutStatic { slot }
            }
            Instr::NewArray(ty) => RInstr::NewArray { is_ref: ty.is_reference() },
            Instr::ALoad => RInstr::ALoad,
            Instr::AStore => RInstr::AStore,
            Instr::ArrayLen => RInstr::ArrayLen,
            Instr::CallVirtual { class, method, argc } => {
                let id = class_id(class)?;
                touch(&mut referenced, id);
                let vslot =
                    registry.vslot(id, method).ok_or_else(|| VmError::ResolutionError {
                        message: format!("no virtual slot for {class}.{method}"),
                    })?;
                RInstr::CallVirtual { vslot, argc: *argc, site: 0 }
            }
            Instr::CallStatic { class, method, argc } => {
                let id = class_id(class)?;
                touch(&mut referenced, id);
                let target =
                    registry.find_method(id, method).ok_or_else(|| VmError::ResolutionError {
                        message: format!("unknown method {class}.{method}"),
                    })?;
                match registry.method(target).native {
                    Some(native) => RInstr::CallNative { native, argc: *argc },
                    None => RInstr::CallDirect {
                        method: target,
                        argc: *argc,
                        has_receiver: false,
                        site: 0,
                    },
                }
            }
            Instr::CallSpecial { class, method, argc } => {
                let id = class_id(class)?;
                touch(&mut referenced, id);
                let target =
                    registry.find_method(id, method).ok_or_else(|| VmError::ResolutionError {
                        message: format!("unknown method {class}.{method}"),
                    })?;
                RInstr::CallDirect { method: target, argc: *argc, has_receiver: true, site: 0 }
            }
            Instr::Jump(t) => RInstr::Jump(*t),
            Instr::JumpIfTrue(t) => RInstr::JumpIfTrue(*t),
            Instr::JumpIfFalse(t) => RInstr::JumpIfFalse(*t),
            Instr::Return => RInstr::Return,
            Instr::ReturnValue => RInstr::ReturnValue,
            Instr::Pop => RInstr::Pop,
            Instr::Dup => RInstr::Dup,
        };
        out.push(r);
    }
    Ok((out, referenced))
}

/// Inline expansion over symbolic bytecode.
///
/// Returns a self-contained instruction sequence (branch targets within
/// `[0, len]`) whose `Load`/`Store` slots are already shifted by `shift`
/// (0 for the outermost method; an inline site's local-window base for
/// recursively expanded callees — nested inline windows are allocated
/// from the shared `next_local` counter and must not be shifted again).
#[allow(clippy::too_many_arguments)]
fn expand(
    registry: &Registry,
    instrs: &[Instr],
    config: &VmConfig,
    depth: usize,
    chain: &mut Vec<MethodId>,
    inlined: &mut Vec<MethodId>,
    next_local: &mut u16,
    shift: u16,
) -> Vec<Instr> {
    let mut out: Vec<Instr> = Vec::with_capacity(instrs.len());
    let mut map: Vec<u32> = Vec::with_capacity(instrs.len() + 1);
    // (out index, original target) pairs for the caller's own branches.
    let mut fixups: Vec<(usize, u32)> = Vec::new();

    for instr in instrs {
        map.push(out.len() as u32);
        match instr {
            Instr::CallStatic { class, method, argc }
            | Instr::CallSpecial { class, method, argc } => {
                let has_receiver = matches!(instr, Instr::CallSpecial { .. });
                if let Some(target) = inline_candidate(registry, class, method, config, depth, chain)
                {
                    let callee = registry.method(target);
                    let callee_code = callee.def.code.as_ref().expect("candidate has code");
                    let base = *next_local;
                    *next_local += callee_code.max_locals;
                    inlined.push(target);
                    chain.push(target);
                    let mut body = expand(
                        registry,
                        &callee_code.instrs,
                        config,
                        depth + 1,
                        chain,
                        inlined,
                        next_local,
                        base,
                    );
                    chain.pop();

                    // Returns become jumps past the inlined block.
                    let body_len = body.len() as u32;
                    for b in &mut body {
                        match b {
                            Instr::Return | Instr::ReturnValue => *b = Instr::Jump(body_len),
                            _ => {}
                        }
                    }

                    // Prologue: pop receiver+args into the fresh local window.
                    let arity = *argc as u16 + u16::from(has_receiver);
                    for i in (0..arity).rev() {
                        out.push(Instr::Store(base + i));
                    }
                    // Splice body, rebasing only branch targets (locals are
                    // already absolute).
                    let start = out.len() as u32;
                    for mut b in body {
                        match &mut b {
                            Instr::Jump(t) | Instr::JumpIfTrue(t) | Instr::JumpIfFalse(t) => {
                                *t += start;
                            }
                            _ => {}
                        }
                        out.push(b);
                    }
                } else {
                    out.push(instr.clone());
                }
            }
            Instr::Load(s) => out.push(Instr::Load(*s + shift)),
            Instr::Store(s) => out.push(Instr::Store(*s + shift)),
            Instr::Jump(t) | Instr::JumpIfTrue(t) | Instr::JumpIfFalse(t) => {
                fixups.push((out.len(), *t));
                out.push(instr.clone());
            }
            other => out.push(other.clone()),
        }
    }
    map.push(out.len() as u32);

    for (at, old_target) in fixups {
        let new_target = map[old_target as usize];
        match &mut out[at] {
            Instr::Jump(t) | Instr::JumpIfTrue(t) | Instr::JumpIfFalse(t) => *t = new_target,
            _ => unreachable!("fixup records only branches"),
        }
    }
    out
}

fn inline_candidate(
    registry: &Registry,
    class: &jvolve_classfile::ClassName,
    method: &str,
    config: &VmConfig,
    depth: usize,
    chain: &[MethodId],
) -> Option<MethodId> {
    if depth >= config.inline_max_depth {
        return None;
    }
    let cid = registry.class_id(class)?;
    let target = registry.find_method(cid, method)?;
    let info = registry.method(target);
    if info.native.is_some() || chain.contains(&target) {
        return None;
    }
    let code = info.def.code.as_ref()?;
    (code.instrs.len() <= config.inline_max_len).then_some(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvolve_classfile::ClassName;
    use jvolve_lang::builtins::builtin_classes;

    fn registry_with(src: &str) -> Registry {
        let mut r = Registry::new();
        r.load_batch(&builtin_classes()).unwrap();
        r.load_batch(&jvolve_lang::compile(src).unwrap()).unwrap();
        r
    }

    fn method_id(r: &Registry, class: &str, method: &str) -> MethodId {
        let cid = r.class_id(&ClassName::from(class)).unwrap();
        r.find_method(cid, method).unwrap()
    }

    #[test]
    fn baseline_is_one_to_one() {
        let r = registry_with(
            "class User { field name: String; field age: int;
               method getAge(): int { return this.age; } }",
        );
        let mid = method_id(&r, "User", "getAge");
        let c = compile(&r, mid, CompileLevel::Base, &VmConfig::default()).unwrap();
        let bytecode_len =
            r.method(mid).def.code.as_ref().unwrap().instrs.len();
        assert_eq!(c.code.len(), bytecode_len, "baseline must map 1:1 for OSR");
        // Offset baked: age is the second field.
        assert!(c.code.iter().any(|i| matches!(i, RInstr::GetField { offset: 1, is_ref: false })));
        assert!(c.osr_capable());
    }

    #[test]
    fn baseline_records_referenced_classes() {
        let r = registry_with(
            "class A { field x: int; }
             class T { static method f(a: A): int { return a.x; } }",
        );
        let mid = method_id(&r, "T", "f");
        let c = compile(&r, mid, CompileLevel::Base, &VmConfig::default()).unwrap();
        let a = r.class_id(&ClassName::from("A")).unwrap();
        assert!(c.referenced_classes.contains(&a));
    }

    #[test]
    fn native_calls_resolve_to_call_native() {
        let r = registry_with(
            "class T { static method f(): void { Sys.printInt(Str.len(\"ab\")); } }",
        );
        let mid = method_id(&r, "T", "f");
        let c = compile(&r, mid, CompileLevel::Base, &VmConfig::default()).unwrap();
        let natives = c.code.iter().filter(|i| matches!(i, RInstr::CallNative { .. })).count();
        assert_eq!(natives, 2);
    }

    #[test]
    fn opt_inlines_small_static_callee() {
        let r = registry_with(
            "class T {
               static method add(a: int, b: int): int { return a + b; }
               static method f(): int { return T.add(1, 2); }
             }",
        );
        let f = method_id(&r, "T", "f");
        let add = method_id(&r, "T", "add");
        let c = compile(&r, f, CompileLevel::Opt, &VmConfig::default()).unwrap();
        assert!(c.inlined.contains(&add));
        assert!(
            !c.code.iter().any(|i| matches!(i, RInstr::CallDirect { .. })),
            "call should be gone: {:?}",
            c.code
        );
        assert!(!c.osr_capable());
    }

    #[test]
    fn opt_inlining_is_transitive_up_to_depth() {
        let r = registry_with(
            "class T {
               static method a(): int { return 1; }
               static method b(): int { return T.a() + 1; }
               static method c(): int { return T.b() + 1; }
             }",
        );
        let c_mid = method_id(&r, "T", "c");
        let compiled = compile(&r, c_mid, CompileLevel::Opt, &VmConfig::default()).unwrap();
        assert_eq!(compiled.inlined.len(), 2);
    }

    #[test]
    fn opt_does_not_inline_recursion() {
        let r = registry_with(
            "class T { static method f(n: int): int {
               if (n <= 0) { return 0; }
               return T.f(n - 1) + 1;
             } }",
        );
        let f = method_id(&r, "T", "f");
        let c = compile(&r, f, CompileLevel::Opt, &VmConfig::default()).unwrap();
        assert!(c.inlined.is_empty());
        assert!(c.code.iter().any(|i| matches!(i, RInstr::CallDirect { .. })));
    }

    #[test]
    fn opt_does_not_inline_virtual_calls() {
        let r = registry_with(
            "class A { method id(): int { return 1; } }
             class T { static method f(a: A): int { return a.id(); } }",
        );
        let f = method_id(&r, "T", "f");
        let c = compile(&r, f, CompileLevel::Opt, &VmConfig::default()).unwrap();
        assert!(c.inlined.is_empty());
        assert!(c.code.iter().any(|i| matches!(i, RInstr::CallVirtual { .. })));
    }

    #[test]
    fn inlined_branches_are_rebased() {
        let r = registry_with(
            "class T {
               static method abs(x: int): int {
                 if (x < 0) { return -x; }
                 return x;
               }
               static method f(y: int): int { return T.abs(y) + T.abs(-y); }
             }",
        );
        let f = method_id(&r, "T", "f");
        let c = compile(&r, f, CompileLevel::Opt, &VmConfig::default()).unwrap();
        // All branch targets must stay in range.
        for (pc, i) in c.code.iter().enumerate() {
            if let RInstr::Jump(t) | RInstr::JumpIfTrue(t) | RInstr::JumpIfFalse(t) = i {
                assert!(
                    (*t as usize) <= c.code.len(),
                    "target {t} out of range at {pc}: {:?}",
                    c.code
                );
            }
        }
        assert_eq!(c.inlined.len(), 2, "abs inlined at two sites");
    }

    #[test]
    fn nested_inline_windows_do_not_collide() {
        // Regression: locals of a callee inlined *within* an inlined
        // callee were shifted twice, indexing past the frame.
        let r = registry_with(
            "class T {
               static method g(x: int): int {
                 var t: int = x * 2;
                 return t + 1;
               }
               static method f(y: int): int {
                 var u: int = T.g(y);
                 return u + y;
               }
               static method top(z: int): int { return T.f(z) + T.g(z); }
             }",
        );
        let top = method_id(&r, "T", "top");
        let c = compile(&r, top, CompileLevel::Opt, &VmConfig::default()).unwrap();
        assert_eq!(c.inlined.len(), 3, "f, g-within-f, and g");
        // Every local slot referenced must fit in the declared frame.
        for i in &c.code {
            if let RInstr::Load(s) | RInstr::Store(s) = i {
                assert!(*s < c.max_locals, "slot {s} >= max_locals {}", c.max_locals);
            }
        }
    }

    #[test]
    fn call_sites_are_dense_and_counted_after_inlining() {
        let r = registry_with(
            "class A { method id(): int { return 1; } }
             class T {
               static method big(a: A, n: int): int {
                 var s: int = 0; var i: int = 0;
                 while (i < n) { s = s + a.id() + a.id(); i = i + 1; }
                 return s + T.big(a, 0);
               }
             }",
        );
        let mid = method_id(&r, "T", "big");
        for level in [CompileLevel::Base, CompileLevel::Opt] {
            let c = compile(&r, mid, level, &VmConfig::default()).unwrap();
            let sites: Vec<u32> = c
                .code
                .iter()
                .filter_map(|i| match i {
                    RInstr::CallVirtual { site, .. } | RInstr::CallDirect { site, .. } => {
                        Some(*site)
                    }
                    _ => None,
                })
                .collect();
            let expect: Vec<u32> = (0..c.call_sites).collect();
            assert_eq!(sites, expect, "sites dense in code order at {level:?}");
            assert!(c.call_sites >= 3, "two virtual + one recursive direct call");
        }
    }

    #[test]
    fn jit_tier_fuses_and_keeps_call_sites_dense() {
        let r = registry_with(
            "class A { field x: int; method id(): int { return this.x; } }
             class T {
               static method big(a: A, n: int): int {
                 var s: int = 0; var i: int = 0;
                 while (i < n) { s = s + a.id() + a.id(); i = i + 1; }
                 return s + T.big(a, 0);
               }
             }",
        );
        let mid = method_id(&r, "T", "big");
        let c = compile(&r, mid, CompileLevel::Jit, &VmConfig::default()).unwrap();
        let meta = c.fused.as_ref().expect("jit code carries fusion metadata");
        assert!(meta.fused_count > 0, "loop body should fuse: {:?}", c.code);
        assert!(c.code.len() < meta.base.code.len());
        assert_eq!(meta.base.level, CompileLevel::Base);
        assert_eq!(meta.base.call_sites, c.call_sites);
        assert!(c.osr_capable());
        // Call sites stay dense in fused-code order (fusion preserves
        // call ops), so the per-thread inline-cache rows still fit.
        let sites: Vec<u32> = c
            .code
            .iter()
            .filter_map(|i| match i {
                RInstr::CallVirtual { site, .. }
                | RInstr::CallDirect { site, .. }
                | RInstr::FusedLoadCallVirtual { site, .. }
                | RInstr::FusedLoadCallDirect { site, .. } => Some(*site),
                _ => None,
            })
            .collect();
        let expect: Vec<u32> = (0..c.call_sites).collect();
        assert_eq!(sites, expect, "sites dense in fused order: {:?}", c.code);
        // Every fused index maps to a base pc inside the base stream.
        for (pc, _) in c.code.iter().enumerate() {
            assert!((c.base_pc_of(pc as u32) as usize) < meta.base.code.len());
        }
        // The getter body fuses to a single leaf superinstruction.
        let id = method_id(&r, "A", "id");
        let g = compile(&r, id, CompileLevel::Jit, &VmConfig::default()).unwrap();
        assert!(g.leaf, "getter should be a leaf: {:?}", g.code);
        assert!(matches!(g.code[..], [RInstr::FusedLoadGetFieldReturn { .. }]));
    }

    #[test]
    fn stale_code_detection_via_resolution_error() {
        // Resolving against a registry that lacks the class fails loudly.
        let r = registry_with("class T { static method f(): int { return 3; } }");
        let mid = method_id(&r, "T", "f");
        let mut info_def = r.method(mid).def.clone();
        info_def.code.as_mut().unwrap().instrs.insert(
            0,
            Instr::GetStatic { class: ClassName::from("Ghost"), field: "x".into() },
        );
        // Build a throwaway registry with the bad method.
        let mut r2 = Registry::new();
        r2.load_batch(&builtin_classes()).unwrap();
        r2.load_batch(&jvolve_lang::compile("class T { static method f(): int { return 3; } }")
            .unwrap())
            .unwrap();
        let t = r2.class_id(&ClassName::from("T")).unwrap();
        r2.replace_method_body(t, "f", info_def).unwrap();
        let mid2 = r2.find_method(t, "f").unwrap();
        let err = compile(&r2, mid2, CompileLevel::Base, &VmConfig::default()).unwrap_err();
        assert!(matches!(err, VmError::ResolutionError { .. }), "{err}");
    }
}
