//! Native (VM-implemented) methods of the builtin classes.
//!
//! This module only declares the dispatch table; execution lives in the
//! [interpreter](crate::interp) because natives need access to the heap,
//! the network substrate, and DSU state.

/// Identifier of a native method implementation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NativeFn {
    /// `Sys.print(s: String)`
    SysPrint,
    /// `Sys.printInt(i: int)`
    SysPrintInt,
    /// `Sys.time(): int` — virtual milliseconds (scheduler ticks).
    SysTime,
    /// `Sys.sleep(ms: int)` — blocks the thread for `ms` ticks.
    SysSleep,
    /// `Sys.rand(bound: int): int`
    SysRand,
    /// `Sys.yieldNow()` — explicit yield point.
    SysYield,
    /// `Sys.threadId(): int`
    SysThreadId,
    /// `Sys.spawn(r: Object): int` — spawns a green thread running
    /// `r.run()`; returns the new thread id.
    SysSpawn,
    /// `Str.len(s): int`
    StrLen,
    /// `Str.substr(s, from, to): String`
    StrSubstr,
    /// `Str.indexOf(s, needle): int`
    StrIndexOf,
    /// `Str.split(s, sep): String[]`
    StrSplit,
    /// `Str.fromInt(i): String`
    StrFromInt,
    /// `Str.toInt(s): int`
    StrToInt,
    /// `Str.charAt(s, i): int`
    StrCharAt,
    /// `Str.contains(s, needle): bool`
    StrContains,
    /// `Str.startsWith(s, prefix): bool`
    StrStartsWith,
    /// `Str.trim(s): String`
    StrTrim,
    /// `Net.listen(port): int`
    NetListen,
    /// `Net.accept(listener): int` — blocks until a client connects.
    NetAccept,
    /// `Net.tryAccept(listener): int` — `-1` when no client is waiting.
    NetTryAccept,
    /// `Net.readLine(conn): String` — blocks; `null` once closed and drained.
    NetReadLine,
    /// `Net.write(conn, data)`
    NetWrite,
    /// `Net.close(conn)`
    NetClose,
    /// `Dsu.forceTransform(o: Object)` — paper §3.4's special VM function:
    /// ensures the referenced object has been transformed before the caller
    /// (an object transformer) dereferences it.
    DsuForceTransform,
    /// `Dsu.updateCount(): int` — number of dynamic updates applied.
    DsuUpdateCount,
}

/// Resolves a builtin `class.method` pair to its implementation.
pub fn resolve(class: &str, method: &str) -> Option<NativeFn> {
    use NativeFn::*;
    Some(match (class, method) {
        ("Sys", "print") => SysPrint,
        ("Sys", "printInt") => SysPrintInt,
        ("Sys", "time") => SysTime,
        ("Sys", "sleep") => SysSleep,
        ("Sys", "rand") => SysRand,
        ("Sys", "yieldNow") => SysYield,
        ("Sys", "threadId") => SysThreadId,
        ("Sys", "spawn") => SysSpawn,
        ("Str", "len") => StrLen,
        ("Str", "substr") => StrSubstr,
        ("Str", "indexOf") => StrIndexOf,
        ("Str", "split") => StrSplit,
        ("Str", "fromInt") => StrFromInt,
        ("Str", "toInt") => StrToInt,
        ("Str", "charAt") => StrCharAt,
        ("Str", "contains") => StrContains,
        ("Str", "startsWith") => StrStartsWith,
        ("Str", "trim") => StrTrim,
        ("Net", "listen") => NetListen,
        ("Net", "accept") => NetAccept,
        ("Net", "tryAccept") => NetTryAccept,
        ("Net", "readLine") => NetReadLine,
        ("Net", "write") => NetWrite,
        ("Net", "close") => NetClose,
        ("Dsu", "forceTransform") => DsuForceTransform,
        ("Dsu", "updateCount") => DsuUpdateCount,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_declared_builtin_method_resolves() {
        for class in jvolve_lang::builtins::builtin_classes() {
            for m in &class.methods {
                assert!(
                    resolve(class.name.as_str(), &m.name).is_some(),
                    "no native implementation for {}.{}",
                    class.name,
                    m.name
                );
            }
        }
    }

    #[test]
    fn unknown_pairs_do_not_resolve() {
        assert!(resolve("Sys", "nope").is_none());
        assert!(resolve("User", "print").is_none());
    }
}
