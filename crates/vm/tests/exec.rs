//! End-to-end execution tests for the VM substrate.

use std::collections::HashMap;

use jvolve_vm::thread::ThreadState;
use jvolve_vm::{SliceOutcome, Value, Vm, VmConfig, VmError};

fn run_main(src: &str) -> Vm {
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source(src).unwrap();
    vm.spawn("Main", "main").unwrap();
    assert!(vm.run_to_completion(1_000_000), "program did not finish");
    vm
}

#[test]
fn fibonacci_recursion() {
    let vm = run_main(
        "class Main {
           static method fib(n: int): int {
             if (n < 2) { return n; }
             return Main.fib(n - 1) + Main.fib(n - 2);
           }
           static method main(): void { Sys.printInt(Main.fib(15)); }
         }",
    );
    assert_eq!(vm.output(), ["610"]);
}

#[test]
fn objects_and_virtual_dispatch() {
    let vm = run_main(
        "class Shape { method area(): int { return 0; } }
         class Square extends Shape {
           field side: int;
           ctor(s: int) { this.side = s; }
           method area(): int { return this.side * this.side; }
         }
         class Rect extends Shape {
           field w: int; field h: int;
           ctor(w: int, h: int) { this.w = w; this.h = h; }
           method area(): int { return this.w * this.h; }
         }
         class Main {
           static method main(): void {
             var shapes: Shape[] = new Shape[3];
             shapes[0] = new Square(4);
             shapes[1] = new Rect(2, 5);
             shapes[2] = new Shape();
             var total: int = 0;
             var i: int = 0;
             while (i < shapes.length) { total = total + shapes[i].area(); i = i + 1; }
             Sys.printInt(total);
           }
         }",
    );
    assert_eq!(vm.output(), ["26"]);
}

#[test]
fn string_operations() {
    let vm = run_main(
        "class Main {
           static method main(): void {
             var parts: String[] = Str.split(\"alice@example.com\", \"@\");
             Sys.print(parts[0]);
             Sys.print(parts[1]);
             Sys.printInt(Str.len(parts[1]));
             Sys.print(Str.substr(\"hello world\", 6, 11));
             if (Str.startsWith(\"GET /index\", \"GET\")) { Sys.print(\"is-get\"); }
             Sys.printInt(Str.toInt(\" 42 \"));
           }
         }",
    );
    assert_eq!(vm.output(), ["alice", "example.com", "11", "world", "is-get", "42"]);
}

#[test]
fn linked_list_survives_gc_pressure() {
    // Allocate far more than a semispace worth of garbage while keeping a
    // linked list live; the collector must preserve it.
    let mut vm = Vm::new(VmConfig { semispace_words: 8 * 1024, ..VmConfig::default() });
    vm.load_source(
        "class Node {
           field value: int; field next: Node;
           ctor(v: int, n: Node) { this.value = v; this.next = n; }
         }
         class Main {
           static method main(): void {
             var head: Node = null;
             var i: int = 0;
             while (i < 200) {
               head = new Node(i, head);
               // Garbage churn.
               var j: int = 0;
               while (j < 50) { var g: Node = new Node(j, null); j = j + 1; }
               i = i + 1;
             }
             var sum: int = 0;
             var cur: Node = head;
             while (cur != null) { sum = sum + cur.value; cur = cur.next; }
             Sys.printInt(sum);
           }
         }",
    )
    .unwrap();
    vm.spawn("Main", "main").unwrap();
    assert!(vm.run_to_completion(1_000_000));
    assert_eq!(vm.output(), ["19900"]);
    assert!(vm.heap().collections() > 0, "GC should have run");
}

#[test]
fn static_fields_are_gc_roots() {
    let mut vm = Vm::new(VmConfig { semispace_words: 8 * 1024, ..VmConfig::default() });
    vm.load_source(
        "class Holder { static field name: String; }
         class Main {
           static method main(): void {
             Holder.name = \"persistent\";
             var i: int = 0;
             while (i < 2000) { var s: String = \"garbage\" + Str.fromInt(i); i = i + 1; }
             Sys.print(Holder.name);
           }
         }",
    )
    .unwrap();
    vm.spawn("Main", "main").unwrap();
    assert!(vm.run_to_completion(1_000_000));
    assert_eq!(vm.output(), ["persistent"]);
    assert!(vm.heap().collections() > 0);
}

#[test]
fn traps_surface_as_thread_state() {
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source(
        "class Main {
           static method main(): void {
             var xs: int[] = new int[2];
             Sys.printInt(xs[5]);
           }
         }",
    )
    .unwrap();
    let tid = vm.spawn("Main", "main").unwrap();
    vm.run_to_completion(10_000);
    let t = vm.thread(tid).unwrap();
    assert!(
        matches!(&t.state, ThreadState::Trapped(VmError::IndexOutOfBounds { index: 5, .. })),
        "{:?}",
        t.state
    );
}

#[test]
fn null_pointer_trap() {
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source(
        "class A { field x: int; }
         class Main {
           static method main(): void {
             var a: A = null;
             Sys.printInt(a.x);
           }
         }",
    )
    .unwrap();
    let tid = vm.spawn("Main", "main").unwrap();
    vm.run_to_completion(10_000);
    assert!(matches!(
        &vm.thread(tid).unwrap().state,
        ThreadState::Trapped(VmError::NullPointer { .. })
    ));
}

#[test]
fn division_by_zero_trap() {
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source(
        "class Main { static method main(): void { Sys.printInt(1 / (1 - 1)); } }",
    )
    .unwrap();
    let tid = vm.spawn("Main", "main").unwrap();
    vm.run_to_completion(10_000);
    assert!(matches!(
        &vm.thread(tid).unwrap().state,
        ThreadState::Trapped(VmError::DivisionByZero)
    ));
}

#[test]
fn hot_methods_get_opt_compiled() {
    let mut vm = Vm::new(VmConfig { opt_threshold: 10, ..VmConfig::small() });
    vm.load_source(
        "class Main {
           static method inc(x: int): int { return x + 1; }
           static method main(): void {
             var i: int = 0;
             var v: int = 0;
             while (i < 500) { v = Main.inc(v); i = i + 1; }
             Sys.printInt(v);
           }
         }",
    )
    .unwrap();
    vm.spawn("Main", "main").unwrap();
    assert!(vm.run_to_completion(1_000_000));
    assert_eq!(vm.output(), ["500"]);
    assert!(vm.stats().opt_compiles >= 1, "main should have been opt-compiled");
}

#[test]
fn spawned_threads_run_concurrently() {
    let mut vm = Vm::new(VmConfig { quantum: 50, ..VmConfig::small() });
    vm.load_source(
        "class Worker {
           field id: int;
           ctor(id: int) { this.id = id; }
           method run(): void {
             var i: int = 0;
             while (i < 100) { i = i + 1; }
             Sys.print(\"done \" + Str.fromInt(this.id));
           }
         }
         class Main {
           static method main(): void {
             var i: int = 0;
             while (i < 3) { Sys.spawn(new Worker(i)); i = i + 1; }
             Sys.print(\"spawned\");
           }
         }",
    )
    .unwrap();
    vm.spawn("Main", "main").unwrap();
    assert!(vm.run_to_completion(1_000_000));
    let mut out = vm.output().to_vec();
    out.sort();
    assert_eq!(out, ["done 0", "done 1", "done 2", "spawned"]);
}

#[test]
fn echo_server_over_simulated_network() {
    let mut vm = Vm::new(VmConfig { quantum: 200, ..VmConfig::small() });
    vm.load_source(
        "class Main {
           static method main(): void {
             var l: int = Net.listen(7000);
             var conn: int = Net.accept(l);
             while (true) {
               var line: String = Net.readLine(conn);
               if (line == null) { break; }
               Net.write(conn, \"echo: \" + line);
             }
             Net.close(conn);
           }
         }",
    )
    .unwrap();
    vm.spawn("Main", "main").unwrap();
    // Let the server reach accept (it blocks).
    vm.run_slices(10);
    let conn = vm.net_mut().client_connect(7000).unwrap();
    vm.net_mut().client_send(conn, "hello");
    vm.net_mut().client_send(conn, "world");
    vm.run_slices(20);
    assert_eq!(vm.net_mut().client_recv(conn), Some("echo: hello".to_string()));
    assert_eq!(vm.net_mut().client_recv(conn), Some("echo: world".to_string()));
    vm.net_mut().client_close(conn);
    assert!(vm.run_to_completion(10_000));
}

#[test]
fn sleep_blocks_and_wakes() {
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source(
        "class Main {
           static method main(): void {
             var before: int = Sys.time();
             Sys.sleep(10);
             var after: int = Sys.time();
             if (after >= before + 10) { Sys.print(\"slept\"); }
           }
         }",
    )
    .unwrap();
    vm.spawn("Main", "main").unwrap();
    assert!(vm.run_to_completion(10_000));
    assert_eq!(vm.output(), ["slept"]);
}

#[test]
fn call_static_sync_returns_value() {
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source("class M { static method triple(x: int): int { return x * 3; } }").unwrap();
    let v = vm.call_static_sync("M", "triple", &[Value::Int(14)]).unwrap();
    assert_eq!(v, Some(Value::Int(42)));
}

#[test]
fn return_barrier_fires_on_return() {
    let mut vm = Vm::new(VmConfig { quantum: 10, ..VmConfig::small() });
    vm.load_source(
        "class Main {
           static method work(): int {
             var i: int = 0;
             while (i < 2000) { i = i + 1; }
             return i;
           }
           static method main(): void {
             Sys.printInt(Main.work());
           }
         }",
    )
    .unwrap();
    let tid = vm.spawn("Main", "main").unwrap();
    // Run until `work` is on the stack.
    let mut on_stack = false;
    for _ in 0..50 {
        vm.step_slice();
        let t = vm.thread(tid).unwrap();
        if t.frames.len() == 2 {
            on_stack = true;
            break;
        }
    }
    assert!(on_stack, "work() should be on the stack");
    let frame_idx = vm.thread(tid).unwrap().frames.len() - 1;
    vm.install_return_barrier(tid, frame_idx).unwrap();

    let mut barrier_hit = false;
    for _ in 0..10_000 {
        let report = vm.step_slice();
        if let SliceOutcome::ReturnBarrier { .. } = report.event {
            barrier_hit = true;
            break;
        }
    }
    assert!(barrier_hit, "return barrier should fire when work() returns");
    assert!(vm.run_to_completion(10_000));
    assert_eq!(vm.output(), ["2000"]);
}

#[test]
fn osr_replaces_base_compiled_frame() {
    let mut vm = Vm::new(VmConfig { quantum: 10, enable_opt: false, ..VmConfig::small() });
    vm.load_source(
        "class Main {
           static method spin(): int {
             var i: int = 0;
             while (i < 5000) { i = i + 1; }
             return i;
           }
           static method main(): void { Sys.printInt(Main.spin()); }
         }",
    )
    .unwrap();
    let tid = vm.spawn("Main", "main").unwrap();
    for _ in 0..20 {
        vm.step_slice();
        if vm.thread(tid).unwrap().frames.len() == 2 {
            break;
        }
    }
    let before = vm.thread(tid).unwrap().frames[1].pc;
    vm.osr_replace(tid, 1).unwrap();
    let after = vm.thread(tid).unwrap().frames[1].pc;
    assert_eq!(before, after, "OSR keeps the pc (1:1 base mapping)");
    assert!(vm.run_to_completion(100_000));
    assert_eq!(vm.output(), ["5000"]);
}

#[test]
fn update_gc_and_transformers_end_to_end() {
    // A miniature of the §3.4 flow, using VM mechanisms directly: class
    // Point gets a new field `z`; the transformer copies x/y and sets
    // z = x + y.
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source(
        "class Point {
           field x: int; field y: int;
           ctor(x: int, y: int) { this.x = x; this.y = y; }
         }
         class Holder { static field p: Point; }
         class Main {
           static method main(): void { Holder.p = new Point(3, 4); }
         }",
    )
    .unwrap();
    vm.spawn("Main", "main").unwrap();
    assert!(vm.run_to_completion(10_000));

    // Rename the old class and load the new version plus transformer.
    let old_id = vm.registry().class_id(&"Point".into()).unwrap();
    vm.registry_mut().rename_class(old_id, "v1_Point".into()).unwrap();
    vm.registry_mut().strip_methods(old_id);

    let old_stub = vm.registry().class(old_id).file.clone();
    let mut externs = jvolve_classfile::ClassSet::new();
    externs.insert(old_stub);
    let new_classes = jvolve_lang::compile_with(
        "class Point {
           field x: int; field y: int; field z: int;
           ctor(x: int, y: int) { this.x = x; this.y = y; this.z = 0; }
         }",
        &jvolve_lang::CompileOptions { externs: externs.clone(), override_access: false },
    )
    .unwrap();
    let new_ids = vm.load_classes(&new_classes).unwrap();
    let new_id = new_ids[0];
    externs.insert(new_classes[0].clone());

    let transformer = jvolve_lang::compile_with(
        "class JvolveTransformers {
           static method jvolve_object_Point(to: Point, from: v1_Point): void {
             to.x = from.x;
             to.y = from.y;
             to.z = from.x + from.y;
           }
         }",
        &jvolve_lang::CompileOptions { externs, override_access: true },
    )
    .unwrap();
    let tids = vm.load_classes(&transformer).unwrap();
    let tmid = vm.registry().find_method(tids[0], "jvolve_object_Point").unwrap();

    let mut remap = HashMap::new();
    remap.insert(old_id, new_id);
    let mut tf = HashMap::new();
    tf.insert(new_id, tmid);
    vm.collect_for_update(remap, tf).unwrap();
    assert_eq!(vm.pending_transforms(), 1);
    vm.transform_pending().unwrap();

    // The static still points at a valid Point, now with z = 7.
    let p = vm.read_static("Holder", "p");
    let Value::Ref(r) = p else { panic!("Holder.p should be a ref") };
    assert_eq!(vm.read_field(r, "x"), Value::Int(3));
    assert_eq!(vm.read_field(r, "y"), Value::Int(4));
    assert_eq!(vm.read_field(r, "z"), Value::Int(7));
    assert_eq!(vm.update_count(), 1);
}

#[test]
fn lazy_indirection_migrates_on_first_access() {
    let mut vm = Vm::new(VmConfig { lazy_indirection: true, ..VmConfig::small() });
    vm.load_source(
        "class Point {
           field x: int; field y: int;
           ctor(x: int, y: int) { this.x = x; this.y = y; }
         }
         class Holder { static field p: Point; }
         class Main {
           static method main(): void { Holder.p = new Point(3, 4); }
           static method readx(): int { return Holder.p.x; }
         }",
    )
    .unwrap();
    vm.spawn("Main", "main").unwrap();
    assert!(vm.run_to_completion(10_000));

    let old_id = vm.registry().class_id(&"Point".into()).unwrap();
    vm.registry_mut().rename_class(old_id, "v1_Point".into()).unwrap();
    let new_classes = jvolve_lang::compile(
        "class Point { field x: int; field y: int; field z: int; }",
    )
    .unwrap();
    let new_id = vm.load_classes(&new_classes).unwrap()[0];

    let mut remap = HashMap::new();
    remap.insert(old_id, new_id);
    vm.begin_lazy_update(remap);

    // First access migrates the object; same-named fields carry over.
    let v = vm.call_static_sync("Main", "readx", &[]).unwrap();
    assert_eq!(v, Some(Value::Int(3)));
    let p = vm.read_static("Holder", "p");
    let Value::Ref(r) = p else { panic!() };
    let resolved = vm.heap().resolve(r);
    assert_eq!(vm.heap().class_of(resolved), new_id);
}
