//! Property tests for the epoch-guarded inline caches (`jvolve_vm::icache`).
//!
//! A guest thread sits in a tight loop printing the result of one call —
//! virtual in one test, static-direct in the other — so its per-thread
//! caches stay warm across thousands of dispatches. The host, standing in
//! for the update driver, interleaves random registry mutations at slice
//! boundaries (safe points): body swaps, invalidations, method strips and
//! restores, rollbacks from saved state, and code republishes. The
//! property: every value the guest prints is the value of a body that was
//! actually installed at the time, and after each semantic change the new
//! value shows up within the one in-flight call the thread may have been
//! carrying — a stale cache entry surviving an epoch bump would either
//! freeze the output on the old value or print garbage, and both fail.

use jvolve_classfile::{ClassName, MethodDef};
use jvolve_vm::{SliceOutcome, Vm, VmConfig};

/// SplitMix64, as in `gc_props.rs`: deterministic, seedable, no deps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The distinct return values the swappable body cycles through.
const VERSIONS: [i64; 4] = [100, 101, 102, 103];

/// Guest whose hot call site is a *virtual* dispatch (`o.v()`).
fn virtual_src(val: i64) -> String {
    format!(
        "class Obj {{ method v(): int {{ return {val}; }} }}
         class Main {{
           static method main(): void {{
             var o: Obj = new Obj();
             var i: int = 0;
             while (i < 1000000000) {{ Sys.printInt(o.v()); i = i + 1; }}
           }}
         }}"
    )
}

/// Guest whose hot call site is a *direct* (static) dispatch (`Util.f()`).
fn direct_src(val: i64) -> String {
    format!(
        "class Util {{ static method f(): int {{ return {val}; }} }}
         class Main {{
           static method main(): void {{
             var i: int = 0;
             while (i < 1000000000) {{ Sys.printInt(Util.f()); i = i + 1; }}
           }}
         }}"
    )
}

/// Compiles `src` and extracts the [`MethodDef`] for `class::method`.
fn def_of(src: &str, class: &str, method: &str) -> MethodDef {
    let files = jvolve_lang::compile(src).expect("variant source compiles");
    files
        .iter()
        .find(|f| f.name == ClassName::from(class))
        .expect("variant declares the class")
        .methods
        .iter()
        .find(|m| m.name == method)
        .expect("variant declares the method")
        .clone()
}

/// Runs slices until the guest has printed `settle` consecutive values
/// equal to `expected`. At most `max_stale` prints of `prev` are allowed
/// first (the call that was in flight when the mutation landed); anything
/// else — a value from neither body, or `prev` reappearing after
/// `expected` was seen — is a stale-cache bug and panics.
fn drain_until_settled(vm: &mut Vm, cursor: &mut usize, expected: i64, prev: i64) {
    const SETTLE: usize = 3;
    const MAX_STALE: usize = 2;
    const MAX_SLICES: usize = 400;

    let mut stale = 0usize;
    let mut run = 0usize;
    for _ in 0..MAX_SLICES {
        let report = vm.step_slice();
        if let SliceOutcome::Trapped(e) = &report.event {
            panic!("guest trapped under registry mutation: {e:?}");
        }
        assert!(
            !matches!(report.event, SliceOutcome::Finished | SliceOutcome::Idle),
            "guest loop ended early — raise the guest iteration bound"
        );
        let out = vm.output();
        while *cursor < out.len() {
            let val: i64 = out[*cursor].parse().expect("Sys.printInt output");
            *cursor += 1;
            if val == expected {
                run += 1;
                if run >= SETTLE {
                    // Consume everything already printed this slice: once
                    // the new value has appeared, the old one may not.
                    while *cursor < out.len() {
                        let rest: i64 = out[*cursor].parse().expect("Sys.printInt output");
                        *cursor += 1;
                        assert_eq!(rest, expected, "{rest} printed after {expected} had settled");
                    }
                    return;
                }
            } else {
                assert_eq!(run, 0, "value {val} printed after {expected} had settled");
                assert_eq!(val, prev, "value {val} matches no installed body (want {expected})");
                stale += 1;
                assert!(stale <= MAX_STALE, "{stale} stale prints of {prev}: cache not flushed");
            }
        }
    }
    panic!("guest never settled on {expected} within {MAX_SLICES} slices (stale cache?)");
}

/// One randomized interleaving: boot the guest at `VERSIONS[0]`, then
/// alternate host-side registry mutations with guest slices, checking the
/// printed stream after every operation.
///
/// With `jit` set, the template-JIT tier runs with a threshold low enough
/// that `main`'s loop OSRs into fused code almost immediately and the
/// callee gets jit-promoted too — so every mutation lands on a *fused*
/// caller whose call site sits inside a superinstruction, exercising the
/// epoch revalidation and deopt paths instead of plain cache flushes.
fn run_interleaving(
    seed: u64,
    ops: usize,
    class: &str,
    method: &str,
    src: fn(i64) -> String,
    jit: bool,
) {
    let mut rng = Rng::new(seed);
    // Small quantum = many safe points per print burst; low opt threshold
    // so the callee gets opt-promoted (and republished) during the run.
    let mut vm = Vm::new(VmConfig {
        quantum: 500,
        opt_threshold: 20,
        enable_jit: jit,
        jit_threshold: 30,
        ..VmConfig::small()
    });
    vm.load_source(&src(VERSIONS[0])).expect("guest loads");
    let defs: Vec<MethodDef> =
        VERSIONS.iter().map(|&val| def_of(&src(val), class, method)).collect();
    let cid = vm.registry().class_id(&ClassName::from(class)).expect("class loaded");
    let mid = vm.registry().find_method(cid, method).expect("method loaded");

    vm.spawn("Main", "main").expect("guest spawns");
    let mut cursor = 0usize;
    let mut expected = VERSIONS[0];
    // (def, compiled, invocations, invalidations, value) captured before an
    // install — what the update controller's rollback ledger would hold.
    let mut saved: Option<(MethodDef, _, u32, u32, i64)> = None;

    // Warm up: fill the cache and cross the opt threshold.
    drain_until_settled(&mut vm, &mut cursor, expected, expected);

    for _ in 0..ops {
        let prev = expected;
        match rng.below(6) {
            // Install a (possibly identical) version, as a body update does.
            0 | 1 => {
                let k = rng.below(VERSIONS.len());
                if rng.below(2) == 0 {
                    let info = vm.registry().method(mid);
                    saved = Some((
                        info.def.clone(),
                        info.compiled.clone(),
                        info.invocations,
                        info.invalidations,
                        expected,
                    ));
                }
                vm.registry_mut()
                    .replace_method_body(cid, method, defs[k].clone())
                    .expect("method exists");
                vm.registry_mut().invalidate_inliners(&[mid]);
                expected = VERSIONS[k];
            }
            // Invalidate: recompile on next call, semantics unchanged.
            2 => vm.registry_mut().invalidate(mid),
            // Strip the class and restore it, as an aborted update does.
            3 => {
                let snap = vm.registry_mut().snapshot_class_methods(cid);
                vm.registry_mut().strip_methods(cid);
                vm.registry_mut().restore_class_methods(cid, snap);
            }
            // Roll back to a previously captured ledger entry.
            4 => {
                if let Some((def, compiled, invocations, invalidations, val)) = saved.take() {
                    vm.registry_mut().restore_method_state(
                        mid,
                        def,
                        compiled,
                        invocations,
                        invalidations,
                    );
                    vm.registry_mut().invalidate_inliners(&[mid]);
                    expected = val;
                }
            }
            // Republish the current code object (epoch bump, same code) —
            // what an OSR republish or tier promotion looks like to caches.
            _ => {
                if let Some(code) = vm.registry().method(mid).compiled.clone() {
                    vm.registry_mut().set_compiled(mid, code);
                }
            }
        }
        drain_until_settled(&mut vm, &mut cursor, expected, prev);
    }

    if jit {
        let stats = vm.stats();
        assert!(stats.jit_compiles > 0, "seed {seed}: the jit tier never engaged");
        assert!(stats.fused_steps > 0, "seed {seed}: no superinstruction ever retired");
    }
}

#[test]
fn virtual_call_caches_never_serve_stale_code() {
    for seed in 0..6 {
        run_interleaving(seed, 40, "Obj", "v", virtual_src, false);
    }
}

#[test]
fn direct_call_caches_never_serve_stale_code() {
    for seed in 100..106 {
        run_interleaving(seed, 40, "Util", "f", direct_src, false);
    }
}

#[test]
fn jit_promoted_virtual_call_sites_never_serve_stale_code() {
    for seed in 200..206 {
        run_interleaving(seed, 40, "Obj", "v", virtual_src, true);
    }
}

#[test]
fn jit_promoted_direct_call_sites_never_serve_stale_code() {
    for seed in 300..306 {
        run_interleaving(seed, 40, "Util", "f", direct_src, true);
    }
}
