//! Property tests for the copying collector over random object graphs.
//!
//! Graphs mix plain objects, ref arrays, prim arrays, and strings, with
//! arbitrary edges (including cycles and self-loops). Invariants:
//!
//! * an ordinary collection preserves the reachable graph *shape* exactly
//!   (kinds, classes, lengths, primitive payloads, string contents, and
//!   the edge structure up to isomorphism);
//! * an update collection pairs every reachable instance of the remapped
//!   class with a zeroed new-layout object on the update log;
//! * collection is deterministic: two identical heaps collected with the
//!   same snapshot and remap table produce identical update logs, in the
//!   same order, and identical copy counts;
//! * the parallel collector is observationally identical to the serial
//!   one for every worker count 1–8: same reachable-graph signature (so
//!   no cell was copied twice — a double copy would break sharing — and
//!   every live edge was remapped to the single surviving copy), same
//!   fold of the copy counters, and the same canonical update-log order.

use std::collections::BTreeMap;

use jvolve_vm::heap::{ClassLayouts, GcRemap, Heap, HeapKind, LayoutSnapshot, RemapTable};
use jvolve_vm::{ClassId, GcRef};

// ---- deterministic rng (SplitMix64) -----------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }
}

// ---- test layouts ------------------------------------------------------

/// Class 0: 1 prim + 2 ref fields. Class 1: 1 ref + 1 prim field.
/// Class 9: the remap target for class 0 (one extra prim field).
struct Layouts;
impl ClassLayouts for Layouts {
    fn object_size(&self, class: ClassId) -> usize {
        match class.0 {
            0 => 3,
            1 => 2,
            _ => 4,
        }
    }
    fn ref_map(&self, class: ClassId) -> &[bool] {
        match class.0 {
            0 => &[false, true, true],
            1 => &[true, false],
            _ => &[false, true, true, false],
        }
    }
}

struct Remap09;
impl GcRemap for Remap09 {
    fn remap(&self, class: ClassId) -> Option<ClassId> {
        (class.0 == 0).then_some(ClassId(9))
    }
}

fn snapshot() -> LayoutSnapshot {
    LayoutSnapshot::from_layouts(&Layouts, &[ClassId(0), ClassId(1), ClassId(9)])
}

// ---- random graph construction ----------------------------------------

/// What each generated node is; the payload parameterizes the cell.
#[derive(Clone, Copy)]
enum NodeKind {
    Obj0,
    Obj1,
    RefArray(usize),
    PrimArray(usize),
    Str(usize),
}

struct Graph {
    nodes: Vec<GcRef>,
    roots: Vec<GcRef>,
}

/// Builds the same heap for the same seed: node kinds, primitive fill,
/// edge wiring, and root choice all come from the seeded generator.
fn build_graph(heap: &mut Heap, seed: u64) -> Graph {
    let mut rng = Rng::new(seed);
    let n = rng.range(1, 40);
    let kinds: Vec<NodeKind> = (0..n)
        .map(|_| match rng.below(5) {
            0 => NodeKind::Obj0,
            1 => NodeKind::Obj1,
            2 => NodeKind::RefArray(rng.below(6)),
            3 => NodeKind::PrimArray(rng.below(6)),
            _ => NodeKind::Str(rng.below(24)),
        })
        .collect();

    let nodes: Vec<GcRef> = kinds
        .iter()
        .map(|k| match *k {
            NodeKind::Obj0 => {
                let r = heap.alloc_object(ClassId(0), 3).expect("fits");
                heap.set(r, 0, rng.next_u64() | 1);
                r
            }
            NodeKind::Obj1 => {
                let r = heap.alloc_object(ClassId(1), 2).expect("fits");
                heap.set(r, 1, rng.next_u64() | 1);
                r
            }
            NodeKind::RefArray(len) => heap.alloc_array(true, len).expect("fits"),
            NodeKind::PrimArray(len) => {
                let r = heap.alloc_array(false, len).expect("fits");
                for i in 0..len {
                    heap.set(r, i, rng.next_u64());
                }
                r
            }
            NodeKind::Str(len) => {
                let s: String =
                    (0..len).map(|_| char::from(b'a' + (rng.next_u64() % 26) as u8)).collect();
                heap.alloc_string(&s).expect("fits")
            }
        })
        .collect();

    // Wire ref slots: each slot is null or a random node (self-loops and
    // cycles come for free).
    for (i, k) in kinds.iter().enumerate() {
        let slots: Vec<usize> = match *k {
            NodeKind::Obj0 => vec![1, 2],
            NodeKind::Obj1 => vec![0],
            NodeKind::RefArray(len) => (0..len).collect(),
            _ => vec![],
        };
        for slot in slots {
            if rng.below(4) != 0 {
                let target = nodes[rng.below(n)];
                heap.set(nodes[i], slot, u64::from(target.0));
            }
        }
    }

    let mut roots: Vec<GcRef> =
        (0..rng.range(1, 6)).map(|_| nodes[rng.below(n)]).collect();
    roots.dedup();
    Graph { nodes, roots }
}

/// Like [`build_graph`] but sized and wired to make parallel workers
/// collide: hundreds of nodes, a handful of "hub" cells that half of all
/// edges target (shared subgraphs — every worker races to claim them),
/// long ref arrays whose elements span the whole allocation range
/// (cross-shard edges), and enough roots that all 8 workers get a shard.
fn build_contended_graph(heap: &mut Heap, seed: u64) -> Graph {
    let mut rng = Rng::new(seed ^ 0xC0FF_EE00_C0FF_EE00);
    let n = rng.range(600, 1000);
    let mut nodes: Vec<GcRef> = Vec::with_capacity(n);
    for i in 0..n {
        let node = match rng.below(5) {
            0 | 1 => {
                let r = heap.alloc_object(ClassId(0), 3).expect("fits");
                heap.set(r, 0, rng.next_u64() | 1);
                r
            }
            2 => {
                let r = heap.alloc_object(ClassId(1), 2).expect("fits");
                heap.set(r, 1, rng.next_u64() | 1);
                r
            }
            3 => heap.alloc_array(true, rng.range(1, 32)).expect("fits"),
            _ => heap.alloc_string(&format!("cell-{i}")).expect("fits"),
        };
        nodes.push(node);
        if rng.below(7) == 0 {
            heap.alloc_object(ClassId(1), 2).expect("fits"); // garbage
        }
    }

    let hubs: Vec<GcRef> = (0..4).map(|_| nodes[rng.below(n)]).collect();
    for i in 0..n {
        let node = nodes[i];
        let slots: Vec<usize> = match heap.kind(node) {
            HeapKind::Object if heap.class_of(node) == ClassId(0) => vec![1, 2],
            HeapKind::Object => vec![0],
            HeapKind::RefArray => (0..heap.len_of(node) as usize).collect(),
            _ => vec![],
        };
        for slot in slots {
            let target = if rng.below(2) == 0 {
                hubs[rng.below(hubs.len())] // contended shared target
            } else {
                nodes[rng.below(n)] // cross-shard edge (cycles included)
            };
            heap.set(node, slot, u64::from(target.0));
        }
    }

    // One root per prospective worker shard plus extras: strided sharding
    // gives every worker real work, maximizing claim races.
    let roots: Vec<GcRef> = (0..16).map(|_| nodes[rng.below(n)]).collect();
    Graph { nodes, roots }
}

// ---- graph-shape signature ---------------------------------------------

/// One node of the canonical reachable-graph signature. References are
/// visit indices (BFS order from the roots), so two isomorphic graphs at
/// different addresses produce equal signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Sig {
    Object { class: u32, prims: Vec<u64>, refs: Vec<Option<usize>> },
    RefArray { elems: Vec<Option<usize>> },
    PrimArray { elems: Vec<u64> },
    Str(String),
}

fn signature(heap: &Heap, roots: &[GcRef]) -> (Vec<Sig>, Vec<usize>) {
    let mut index: BTreeMap<u32, usize> = BTreeMap::new();
    let mut order: Vec<GcRef> = Vec::new();
    let mut head = 0;
    let visit = |r: GcRef, order: &mut Vec<GcRef>, index: &mut BTreeMap<u32, usize>| {
        *index.entry(r.0).or_insert_with(|| {
            order.push(r);
            order.len() - 1
        })
    };
    let root_ids: Vec<usize> =
        roots.iter().map(|&r| visit(r, &mut order, &mut index)).collect();
    while head < order.len() {
        let r = order[head];
        head += 1;
        let slots: Vec<usize> = match heap.kind(r) {
            HeapKind::Object => {
                let class = heap.class_of(r);
                Layouts
                    .ref_map(class)
                    .iter()
                    .enumerate()
                    .filter(|(_, &is_ref)| is_ref)
                    .map(|(i, _)| i)
                    .collect()
            }
            HeapKind::RefArray => (0..heap.len_of(r) as usize).collect(),
            _ => vec![],
        };
        for slot in slots {
            let w = heap.get(r, slot);
            if w != 0 {
                visit(GcRef(w as u32), &mut order, &mut index);
            }
        }
    }

    let sigs = order
        .iter()
        .map(|&r| match heap.kind(r) {
            HeapKind::Object => {
                let class = heap.class_of(r);
                let map = Layouts.ref_map(class);
                let mut prims = Vec::new();
                let mut refs = Vec::new();
                for (i, &is_ref) in map.iter().enumerate() {
                    let w = heap.get(r, i);
                    if is_ref {
                        refs.push((w != 0).then(|| index[&(w as u32)]));
                    } else {
                        prims.push(w);
                    }
                }
                Sig::Object { class: class.0, prims, refs }
            }
            HeapKind::RefArray => Sig::RefArray {
                elems: (0..heap.len_of(r) as usize)
                    .map(|i| {
                        let w = heap.get(r, i);
                        (w != 0).then(|| index[&(w as u32)])
                    })
                    .collect(),
            },
            HeapKind::PrimArray => Sig::PrimArray {
                elems: (0..heap.len_of(r) as usize).map(|i| heap.get(r, i)).collect(),
            },
            HeapKind::Str => Sig::Str(heap.read_string(r)),
        })
        .collect();
    (sigs, root_ids)
}

// ---- properties --------------------------------------------------------

/// Ordinary collections (no remap) preserve the reachable graph exactly.
#[test]
fn random_graphs_survive_collection_with_identical_shape() {
    let snap = snapshot();
    for seed in 0..96 {
        let mut heap = Heap::new(64 * 1024);
        let g = build_graph(&mut heap, seed);
        let before = signature(&heap, &g.roots);

        heap.collect(&g.roots, &snap, None).expect("collect");
        let new_roots: Vec<GcRef> = g.roots.iter().map(|&r| heap.resolve(r)).collect();
        let after = signature(&heap, &new_roots);

        assert_eq!(before, after, "seed {seed}: reachable graph shape changed");
    }
}

/// Update collections log exactly the reachable instances of the remapped
/// class, each paired with a zeroed new-layout object; everything else
/// keeps its shape.
#[test]
fn random_graphs_survive_update_collection_with_correct_pairing() {
    let snap = snapshot();
    let table = RemapTable::from_policy(&Remap09, 10);
    for seed in 0..96 {
        let mut heap = Heap::new(64 * 1024);
        let g = build_graph(&mut heap, seed);
        let (before, _) = signature(&heap, &g.roots);
        let expected_remapped = before
            .iter()
            .filter(|s| matches!(s, Sig::Object { class: 0, .. }))
            .count();

        let out = heap.collect(&g.roots, &snap, Some(&table)).expect("collect");
        assert_eq!(
            out.update_log.len(),
            expected_remapped,
            "seed {seed}: one log entry per reachable remapped instance"
        );
        for &(old_copy, new_obj) in &out.update_log {
            assert_eq!(heap.class_of(old_copy), ClassId(0), "seed {seed}");
            assert_eq!(heap.class_of(new_obj), ClassId(9), "seed {seed}");
            // The old copy keeps its payload (slot 0 was filled with an
            // odd word at build time); the new object starts zeroed.
            assert_ne!(heap.get(old_copy, 0), 0, "seed {seed}: payload preserved");
            for slot in [0, 3] {
                assert_eq!(heap.get(new_obj, slot), 0, "seed {seed}: new object zeroed");
            }
        }

        // No old-class object remains reachable from the new roots.
        let new_roots: Vec<GcRef> = g.roots.iter().map(|&r| heap.resolve(r)).collect();
        let (after, _) = signature(&heap, &new_roots);
        assert!(
            !after.iter().any(|s| matches!(s, Sig::Object { class: 0, .. })),
            "seed {seed}: remapped class still reachable"
        );
    }
}

/// Two identical heaps collected identically produce the same update log
/// in the same order (transformers must run in a reproducible order).
#[test]
fn identical_collections_are_deterministic() {
    let snap = snapshot();
    let table = RemapTable::from_policy(&Remap09, 10);
    for seed in 0..48 {
        let mut h1 = Heap::new(64 * 1024);
        let g1 = build_graph(&mut h1, seed);
        let mut h2 = Heap::new(64 * 1024);
        let g2 = build_graph(&mut h2, seed);
        assert_eq!(
            g1.nodes.iter().map(|r| r.0).collect::<Vec<_>>(),
            g2.nodes.iter().map(|r| r.0).collect::<Vec<_>>(),
            "seed {seed}: identical builds"
        );

        let o1 = h1.collect(&g1.roots, &snap, Some(&table)).expect("collect");
        let o2 = h2.collect(&g2.roots, &snap, Some(&table)).expect("collect");

        let log1: Vec<(u32, u32)> =
            o1.update_log.iter().map(|&(a, b)| (a.0, b.0)).collect();
        let log2: Vec<(u32, u32)> =
            o2.update_log.iter().map(|&(a, b)| (a.0, b.0)).collect();
        assert_eq!(log1, log2, "seed {seed}: update-log order must be deterministic");
        assert_eq!(o1.copied_cells, o2.copied_cells, "seed {seed}");
        assert_eq!(o1.copied_words, o2.copied_words, "seed {seed}");
    }
}

/// Parallel ordinary collections are observationally identical to serial
/// ones for every worker count: the reachable-graph signature is
/// preserved (every live edge remapped; sharing intact, so no cell can
/// have been copied twice) and the folded copy counters equal the serial
/// collector's exact totals.
#[test]
fn parallel_collection_matches_serial_for_all_worker_counts() {
    let snap = snapshot();
    for seed in 0..6 {
        let (serial_out, expected) = {
            let mut heap = Heap::new(64 * 1024);
            let g = build_contended_graph(&mut heap, seed);
            let before = signature(&heap, &g.roots);
            let out = heap.collect(&g.roots, &snap, None).expect("serial collect");
            let new_roots: Vec<GcRef> = g.roots.iter().map(|&r| heap.resolve(r)).collect();
            assert_eq!(before, signature(&heap, &new_roots), "seed {seed}: serial baseline");
            (out, before)
        };
        for workers in 1..=8 {
            let mut heap = Heap::new(64 * 1024);
            let g = build_contended_graph(&mut heap, seed);
            let out = heap
                .collect_parallel(&g.roots, &snap, None, workers)
                .expect("parallel collect");
            assert_eq!(
                out.copied_cells, serial_out.copied_cells,
                "seed {seed}, {workers} workers: a claim race double-copied a cell"
            );
            assert_eq!(out.copied_words, serial_out.copied_words, "seed {seed}, {workers} workers");
            let new_roots: Vec<GcRef> = g.roots.iter().map(|&r| heap.resolve(r)).collect();
            assert_eq!(
                expected,
                signature(&heap, &new_roots),
                "seed {seed}, {workers} workers: reachable graph shape changed"
            );
        }
    }
}

/// Forwards a random subset of the graph's class-0 objects to fresh
/// duplicates (payload and edges copied raw), the way lazy first-touch
/// migration does. Returns the forwarded originals.
fn forward_some_objects(heap: &mut Heap, g: &Graph, rng: &mut Rng) -> Vec<GcRef> {
    let mut forwarded = Vec::new();
    for &r in &g.nodes {
        if !heap.is_forwarded(r)
            && heap.kind(r) == HeapKind::Object
            && heap.class_of(r) == ClassId(0)
            && rng.below(2) == 0
        {
            let dup = heap.alloc_object(ClassId(0), 3).expect("fits");
            for slot in 0..3 {
                let w = heap.get(r, slot);
                heap.set(dup, slot, w);
            }
            heap.install_forward(r, dup);
            forwarded.push(r);
        }
    }
    forwarded
}

/// The batched SATB scan visits exactly the unforwarded plain objects
/// below the watermark, in address order, for every batch size — and the
/// forwarded cells and above-watermark allocations are stepped over, not
/// visited.
#[test]
fn batched_scan_visits_unforwarded_objects_below_the_watermark() {
    let snap = snapshot();
    for seed in 0..48 {
        let mut heap = Heap::new(64 * 1024);
        let mut rng = Rng::new(seed ^ 0x5CA7_5CA7_5CA7_5CA7);
        let g = build_graph(&mut heap, seed);
        // The watermark precedes the duplicates: everything the forwarding
        // step allocates lands above it, like mid-epoch allocation.
        let watermark = heap.alloc_cursor();
        let forwarded = forward_some_objects(&mut heap, &g, &mut rng);

        let expected: Vec<u32> = g
            .nodes
            .iter()
            .filter(|&&r| !heap.is_forwarded(r) && heap.kind(r) == HeapKind::Object)
            .map(|r| r.0)
            .collect();

        // One unbounded walk and several batch sizes must agree exactly.
        for max_cells in [usize::MAX, 1, 3, 7] {
            let mut seen = Vec::new();
            let mut addr = heap.active_base();
            let mut total_cells = 0;
            while addr < watermark {
                let (next, cells) =
                    heap.scan_objects(addr, watermark, max_cells, &snap, |r, class| {
                        assert_ne!(class, ClassId(9), "seed {seed}: duplicate below watermark");
                        seen.push(r.0);
                    });
                assert!(next > addr, "seed {seed}: scan must make progress");
                addr = next;
                total_cells += cells;
            }
            assert_eq!(
                seen, expected,
                "seed {seed}, batch {max_cells}: scan visited the wrong objects"
            );
            assert_eq!(
                total_cells,
                g.nodes.len(),
                "seed {seed}, batch {max_cells}: every cell below the watermark stepped once"
            );
        }
        let _ = forwarded;
    }
}

/// A batched forwarding collapse is equivalent to a single unbounded
/// sweep: same number of slots rewritten, and afterwards no reference
/// reachable from the (resolved) roots crosses a forwarding word.
#[test]
fn batched_sweep_collapses_every_forward_like_one_pass() {
    let snap = snapshot();
    for seed in 0..48 {
        // Two identically-built-and-forwarded heaps: one swept in one
        // pass, one in randomly-sized batches.
        let build = |heap: &mut Heap| -> Graph {
            let mut rng = Rng::new(seed ^ 0xF0F0_F0F0_F0F0_F0F0);
            let g = build_graph(heap, seed);
            forward_some_objects(heap, &g, &mut rng);
            g
        };

        let mut h1 = Heap::new(64 * 1024);
        let g1 = build(&mut h1);
        let limit = h1.alloc_cursor();
        let (_, _, single_rewritten) =
            h1.sweep_forwards(h1.active_base(), limit, usize::MAX, &snap);

        let mut h2 = Heap::new(64 * 1024);
        let g2 = build(&mut h2);
        let mut rng = Rng::new(seed ^ 0xBA7C_4BA7_C4BA_7C4B);
        let mut addr = h2.active_base();
        let mut batched_rewritten = 0;
        while addr < limit {
            let (next, _, rewritten) =
                h2.sweep_forwards(addr, limit, 1 + rng.below(5), &snap);
            assert!(next > addr, "seed {seed}: sweep must make progress");
            addr = next;
            batched_rewritten += rewritten;
        }
        assert_eq!(
            batched_rewritten, single_rewritten,
            "seed {seed}: batching changed the rewrite count"
        );

        for (heap, g) in [(&h1, &g1), (&h2, &g2)] {
            // Every surviving cell's reference slots resolve to themselves:
            // plain objects via the full walk (which includes the
            // duplicates), ref arrays from the node list (ref arrays are
            // never forwarded here).
            let mut checked = Vec::new();
            heap.for_each_object(&snap, |r, class| {
                for (slot, &is_ref) in Layouts.ref_map(class).iter().enumerate() {
                    if is_ref {
                        checked.push((r, slot));
                    }
                }
            });
            for &r in g
                .nodes
                .iter()
                .filter(|&&r| !heap.is_forwarded(r) && heap.kind(r) == HeapKind::RefArray)
            {
                for slot in 0..heap.len_of(r) as usize {
                    checked.push((r, slot));
                }
            }
            for (r, slot) in checked {
                let w = heap.get(r, slot);
                if w != 0 {
                    assert_eq!(
                        heap.resolve(GcRef(w as u32)),
                        GcRef(w as u32),
                        "seed {seed}: {r} slot {slot} still crosses a forward"
                    );
                }
            }
        }

        // Both sweeps leave isomorphic reachable graphs.
        let roots1: Vec<GcRef> = g1.roots.iter().map(|&r| h1.resolve(r)).collect();
        let roots2: Vec<GcRef> = g2.roots.iter().map(|&r| h2.resolve(r)).collect();
        assert_eq!(
            signature(&h1, &roots1),
            signature(&h2, &roots2),
            "seed {seed}: batched sweep diverged from the single pass"
        );
    }
}

/// Parallel update collections produce the same canonical update log as
/// serial ones — same length, same per-entry original object (identified
/// by the odd payload planted at build time), same old/new classes — and
/// the post-collection graph signature matches for every worker count.
#[test]
fn parallel_update_log_is_canonical_for_all_worker_counts() {
    let snap = snapshot();
    let table = RemapTable::from_policy(&Remap09, 10);
    // The old-copy payloads, in log order, identify the original objects
    // regardless of where the collector placed the copies.
    let log_payloads = |heap: &Heap, out: &jvolve_vm::heap::GcOutcome| -> Vec<u64> {
        out.update_log
            .iter()
            .map(|&(old, new)| {
                assert_eq!(heap.class_of(old), ClassId(0));
                assert_eq!(heap.class_of(new), ClassId(9));
                heap.get(old, 0)
            })
            .collect()
    };
    for seed in 0..6 {
        let (serial_log, expected_after) = {
            let mut heap = Heap::new(64 * 1024);
            let g = build_contended_graph(&mut heap, seed);
            let out = heap.collect(&g.roots, &snap, Some(&table)).expect("serial collect");
            let new_roots: Vec<GcRef> = g.roots.iter().map(|&r| heap.resolve(r)).collect();
            (log_payloads(&heap, &out), signature(&heap, &new_roots))
        };
        assert!(!serial_log.is_empty(), "seed {seed}: graph must contain remapped objects");
        for workers in 1..=8 {
            let mut heap = Heap::new(64 * 1024);
            let g = build_contended_graph(&mut heap, seed);
            let out = heap
                .collect_parallel(&g.roots, &snap, Some(&table), workers)
                .expect("parallel collect");
            assert_eq!(
                log_payloads(&heap, &out),
                serial_log,
                "seed {seed}, {workers} workers: canonical log order diverged"
            );
            let new_roots: Vec<GcRef> = g.roots.iter().map(|&r| heap.resolve(r)).collect();
            assert_eq!(
                expected_after,
                signature(&heap, &new_roots),
                "seed {seed}, {workers} workers: post-update graph diverged"
            );
        }
    }
}
