//! VM edge cases: resource exhaustion, adaptive recompilation, scheduler
//! corner cases, string semantics.

use jvolve_vm::thread::ThreadState;
use jvolve_vm::{Value, Vm, VmConfig, VmError};

#[test]
fn out_of_memory_is_a_trap_not_a_panic() {
    let mut vm = Vm::new(VmConfig { semispace_words: 1024, ..VmConfig::default() });
    vm.load_source(
        "class Hog {
           static field keep: int[][];
           static method main(): void {
             Hog.keep = new int[64][];
             var i: int = 0;
             while (i < 64) { Hog.keep[i] = new int[1024]; i = i + 1; }
           }
         }",
    )
    .unwrap();
    let tid = vm.spawn("Hog", "main").unwrap();
    vm.run_to_completion(100_000);
    assert!(matches!(
        &vm.thread(tid).unwrap().state,
        ThreadState::Trapped(VmError::OutOfMemory { .. })
    ));
}

#[test]
fn deep_recursion_overflows_cleanly() {
    let mut vm = Vm::new(VmConfig { max_stack_depth: 64, ..VmConfig::small() });
    vm.load_source(
        "class R { static method down(n: int): int { return R.down(n + 1); }
                   static method main(): void { Sys.printInt(R.down(0)); } }",
    )
    .unwrap();
    let tid = vm.spawn("R", "main").unwrap();
    vm.run_to_completion(100_000);
    assert!(matches!(
        &vm.thread(tid).unwrap().state,
        ThreadState::Trapped(VmError::StackOverflow)
    ));
}

#[test]
fn invalidated_method_recompiles_and_reoptimizes() {
    // The paper: after invalidation the adaptive system recompiles at
    // baseline, then re-optimizes hot methods.
    let mut vm = Vm::new(VmConfig { opt_threshold: 10, ..VmConfig::small() });
    vm.load_source("class W { static method w(x: int): int { return x + 1; } }").unwrap();
    // Heat it past the opt threshold.
    for i in 0..30 {
        vm.call_static_sync("W", "w", &[Value::Int(i)]).unwrap();
    }
    let w_class = vm.registry().class_id(&"W".into()).unwrap();
    let w = vm.registry().find_method(w_class, "w").unwrap();
    assert!(matches!(
        vm.registry().method(w).compiled.as_ref().unwrap().level,
        jvolve_vm::compiled::CompileLevel::Opt
    ));
    let opt_compiles_before = vm.stats().opt_compiles;

    // Invalidate (as an update would) and heat again.
    vm.registry_mut().invalidate(w);
    assert!(vm.registry().method(w).compiled.is_none());
    for i in 0..30 {
        vm.call_static_sync("W", "w", &[Value::Int(i)]).unwrap();
    }
    assert!(matches!(
        vm.registry().method(w).compiled.as_ref().unwrap().level,
        jvolve_vm::compiled::CompileLevel::Opt
    ));
    assert!(vm.stats().opt_compiles > opt_compiles_before);
}

#[test]
fn string_value_semantics() {
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source(
        "class S {
           static method eq(): bool { return \"a\" + \"b\" == \"ab\"; }
           static method ne(): bool { return \"x\" != \"y\"; }
           static method nullable(s: String): bool { return s == null; }
         }",
    )
    .unwrap();
    assert_eq!(vm.call_static_sync("S", "eq", &[]).unwrap(), Some(Value::Bool(true)));
    assert_eq!(vm.call_static_sync("S", "ne", &[]).unwrap(), Some(Value::Bool(true)));
    assert_eq!(
        vm.call_static_sync("S", "nullable", &[Value::Null]).unwrap(),
        Some(Value::Bool(true))
    );
}

#[test]
fn string_builtins_match_rust_semantics() {
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source(
        "class S {
           static method test(): void {
             Sys.printInt(Str.indexOf(\"hello world\", \"world\"));
             Sys.printInt(Str.indexOf(\"hello\", \"zzz\"));
             Sys.print(Str.substr(\"abcdef\", 1, 4));
             Sys.printInt(Str.charAt(\"A\", 0));
             var parts: String[] = Str.split(\"a,b,,c\", \",\");
             Sys.printInt(parts.length);
             Sys.print(parts[2]);
             Sys.printInt(Str.toInt(\"-42\"));
             Sys.printInt(Str.toInt(\"nonsense\"));
           }
         }",
    )
    .unwrap();
    vm.call_static_sync("S", "test", &[]).unwrap();
    assert_eq!(vm.output(), ["6", "-1", "bcd", "65", "4", "", "-42", "0"]);
}

#[test]
fn negative_array_length_traps() {
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source(
        "class N { static method main(): void { var a: int[] = new int[0 - 3]; } }",
    )
    .unwrap();
    let tid = vm.spawn("N", "main").unwrap();
    vm.run_to_completion(10_000);
    assert!(matches!(
        &vm.thread(tid).unwrap().state,
        ThreadState::Trapped(VmError::IndexOutOfBounds { index: -3, .. })
    ));
}

#[test]
fn run_to_completion_detects_deadlock() {
    // A thread blocked on a connection nobody will write to: with no
    // sleepers and no external input, run_to_completion must give up.
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source(
        "class D { static method main(): void {
           var l: int = Net.listen(1);
           var c: int = Net.accept(l);
         } }",
    )
    .unwrap();
    vm.spawn("D", "main").unwrap();
    assert!(!vm.run_to_completion(10_000), "accept never completes");
}

#[test]
fn many_threads_round_robin_fairly() {
    let mut vm = Vm::new(VmConfig { quantum: 50, ..VmConfig::small() });
    vm.load_source(
        "class W {
           field id: int;
           ctor(id: int) { this.id = id; }
           method run(): void {
             var i: int = 0;
             while (i < 1000) { i = i + 1; }
             Sys.printInt(this.id);
           }
         }
         class M {
           static method main(): void {
             var i: int = 0;
             while (i < 8) { Sys.spawn(new W(i)); i = i + 1; }
           }
         }",
    )
    .unwrap();
    vm.spawn("M", "main").unwrap();
    assert!(vm.run_to_completion(1_000_000));
    let mut out: Vec<i64> = vm.output().iter().map(|s| s.parse().unwrap()).collect();
    out.sort_unstable();
    assert_eq!(out, (0..8).collect::<Vec<_>>());
}

#[test]
fn gc_during_deep_call_stack_preserves_locals() {
    // Locals and operand stacks across many frames are GC roots.
    let mut vm = Vm::new(VmConfig { semispace_words: 4 * 1024, ..VmConfig::default() });
    vm.load_source(
        "class Node { field v: int; ctor(v: int) { this.v = v; } }
         class G {
           static method down(n: int, carry: Node): int {
             if (n == 0) { return carry.v; }
             var mine: Node = new Node(n);
             // Churn to force collections at every depth.
             var i: int = 0;
             while (i < 300) { var g: Node = new Node(i); i = i + 1; }
             return G.down(n - 1, carry) + mine.v;
           }
           static method main(): void {
             Sys.printInt(G.down(40, new Node(7)));
           }
         }",
    )
    .unwrap();
    vm.spawn("G", "main").unwrap();
    assert!(vm.run_to_completion(1_000_000));
    // 7 + sum(1..=40)
    assert_eq!(vm.output(), [(7 + (1..=40).sum::<i64>()).to_string()]);
    assert!(vm.heap().collections() > 0);
}

#[test]
fn spawn_without_run_method_traps() {
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source(
        "class NotAThread { }
         class M { static method main(): void { Sys.spawn(new NotAThread()); } }",
    )
    .unwrap();
    let tid = vm.spawn("M", "main").unwrap();
    vm.run_to_completion(10_000);
    assert!(matches!(
        &vm.thread(tid).unwrap().state,
        ThreadState::Trapped(VmError::ResolutionError { .. })
    ));
}

#[test]
fn spawn_through_stripped_class_traps_gracefully() {
    // Mid-update the driver strips an old class's methods and TIB; a
    // Sys.spawn through a surviving instance of it must trap like a stale
    // CallVirtual does — not panic — and the VM must keep running.
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source(
        "class W { method run(): void { Sys.printInt(7); } }
         class M {
           static field w: W;
           static method mk(): void { M.w = new W(); }
           static method go(): void { Sys.spawn(M.w); }
           static method ping(): int { return 42; }
         }",
    )
    .unwrap();
    vm.call_static_sync("M", "mk", &[]).unwrap();

    let cid = vm
        .registry()
        .class_id(&jvolve_classfile::ClassName::from("W"))
        .unwrap();
    vm.registry_mut().strip_methods(cid);

    let tid = vm.spawn("M", "go").unwrap();
    vm.run_to_completion(10_000);
    assert!(
        matches!(
            &vm.thread(tid).unwrap().state,
            ThreadState::Trapped(VmError::ResolutionError { .. } | VmError::Internal { .. })
        ),
        "spawn through a stripped class must trap, got {:?}",
        vm.thread(tid).unwrap().state
    );
    // No output from W::run, and the VM still executes code.
    assert!(vm.output().is_empty());
    let pong = vm.call_static_sync("M", "ping", &[]).unwrap();
    assert_eq!(pong, Some(Value::Int(42)));
}

#[test]
fn virtual_dispatch_selects_most_derived_override() {
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source(
        "class A { method who(): String { return \"A\"; } }
         class B extends A { method who(): String { return \"B\"; } }
         class C extends B { }
         class D extends C { method who(): String { return \"D\"; } }
         class M {
           static method probe(a: A): String { return a.who(); }
           static method main(): void {
             Sys.print(M.probe(new A()));
             Sys.print(M.probe(new B()));
             Sys.print(M.probe(new C()));
             Sys.print(M.probe(new D()));
           }
         }",
    )
    .unwrap();
    vm.spawn("M", "main").unwrap();
    assert!(vm.run_to_completion(10_000));
    assert_eq!(vm.output(), ["A", "B", "B", "D"]);
}

#[test]
fn super_constructor_chain_initializes_all_levels() {
    let mut vm = Vm::new(VmConfig::small());
    vm.load_source(
        "class A { field a: int; ctor(x: int) { this.a = x; } }
         class B extends A { field b: int; ctor(x: int) { super(x * 2); this.b = x; } }
         class M {
           static method main(): void {
             var o: B = new B(5);
             Sys.printInt(o.a);
             Sys.printInt(o.b);
           }
         }",
    )
    .unwrap();
    vm.spawn("M", "main").unwrap();
    assert!(vm.run_to_completion(10_000));
    assert_eq!(vm.output(), ["10", "5"]);
}

#[test]
fn osr_migrate_rejects_opt_frames_and_bad_pcs() {
    let mut vm = Vm::new(VmConfig { quantum: 10, enable_opt: false, ..VmConfig::small() });
    vm.load_source(
        "class M {
           static method spin(): int {
             var i: int = 0;
             while (i < 100000) { i = i + 1; }
             return i;
           }
           static method other(): int { return 5; }
           static method main(): void { Sys.printInt(M.spin()); }
         }",
    )
    .unwrap();
    let tid = vm.spawn("M", "main").unwrap();
    for _ in 0..20 {
        vm.step_slice();
        if vm.thread(tid).unwrap().frames.len() == 2 {
            break;
        }
    }
    let m = vm.registry().class_id(&"M".into()).unwrap();
    let other = vm.registry().find_method(m, "other").unwrap();
    // Out-of-range pc is rejected.
    let err = vm.osr_migrate(tid, 1, other, 999).unwrap_err();
    assert!(matches!(err, VmError::Internal { .. }), "{err}");
    // A valid migration to pc 0 of another same-shape method works (the
    // driver is responsible for semantic equivalence).
    vm.osr_migrate(tid, 1, other, 0).unwrap();
    assert!(vm.run_to_completion(100_000));
    assert_eq!(vm.output(), ["5"], "the frame now runs `other`");
}
