//! The paper's §4 headline, as a test: apply every release of the three
//! applications to a *running* server. 20 of the 22 updates must apply;
//! the two that change always-on-stack methods must time out.

use jvolve::UpdateOutcome;
use jvolve_apps::harness::{
    app_vm_config, attempt_update, attempt_update_interleaved, bench_apply_options, boot,
    boot_with,
};
use jvolve_apps::workload::{ftp_retr, one_shot, pop_list, smtp_send};
use jvolve_apps::{AppInstance, Emailserver, Ftpserver, GuestApp, Webserver};

#[test]
fn webserver_updates_match_paper() {
    let app = Webserver;
    let versions = app.versions();
    let mut outcomes = Vec::new();
    for from in 0..versions.len() - 1 {
        let to_label = versions[from + 1].label;
        let mut vm = boot(&app, from);
        // Light load so the server has live worker state.
        for _ in 0..3 {
            let resp = one_shot(&mut vm, app.port(), "GET /index.html", 20_000)
                .unwrap_or_else(|| panic!("{to_label}: server unresponsive before update"));
            assert!(resp.0.starts_with("200"), "{to_label}: {resp:?}");
        }
        let (outcome, _) = attempt_update(&mut vm, &app, from, &bench_apply_options());
        if outcome.supported() {
            // The updated server still serves correctly.
            let resp = one_shot(&mut vm, app.port(), "GET /about.html", 40_000)
                .unwrap_or_else(|| panic!("{to_label}: server unresponsive after update"));
            assert!(resp.0.starts_with("200"), "{to_label}: {resp:?}");
        }
        outcomes.push((to_label, outcome));
    }

    for (label, outcome) in &outcomes {
        let expected_fail = app.expected_failures().contains(label);
        assert_eq!(
            !outcome.supported(),
            expected_fail,
            "webserver update to {label}: {outcome}"
        );
    }
    let supported = outcomes.iter().filter(|(_, o)| o.supported()).count();
    assert_eq!(supported, 9, "9 of 10 webserver updates supported");
}

#[test]
fn webserver_serves_requests_between_controller_steps() {
    // The resumable controller lets the embedder keep draining requests
    // while the update waits for a safe point: every request served
    // mid-update must see a fully consistent server — a complete, correct
    // response, never a half-installed class.
    let app = Webserver;
    let mut vm = boot(&app, 0);
    let mut served_mid_update = 0;
    let (outcome, stats) = attempt_update_interleaved(
        &mut vm,
        &app,
        0,
        &bench_apply_options(),
        |vm| {
            let resp = one_shot(vm, app.port(), "GET /index.html", 20_000)
                .expect("server must answer between controller steps");
            assert_eq!(resp.0, "200 <html>welcome</html>", "mid-update response corrupted");
            served_mid_update += 1;
        },
    );
    assert!(outcome.supported(), "{outcome}");
    assert!(stats.is_some());
    assert!(
        served_mid_update >= 1,
        "the waiting phase must have interleaved with request serving"
    );
    // And the updated server serves correctly afterwards.
    let resp = one_shot(&mut vm, app.port(), "GET /about.html", 40_000)
        .expect("server unresponsive after interleaved update");
    assert!(resp.0.starts_with("200"), "{resp:?}");
}

#[test]
fn webserver_serves_verified_responses_while_lazy_epoch_drains() {
    // Lazy mode end to end on a real app: the 5.1.4 → 5.1.5 update (the
    // webserver's largest class update) commits behind the read barrier
    // while the server keeps serving. The controller yields at least once
    // in the lazy phase, so the pump provably runs mid-epoch — and every
    // response served there must be complete and correct.
    let app = Webserver;
    let from = 4; // 5.1.4 → 5.1.5
    let mut config = app_vm_config();
    config.lazy_migration = true;
    let mut vm = boot_with(&app, from, config);
    for _ in 0..3 {
        let resp = one_shot(&mut vm, app.port(), "GET /index.html", 20_000)
            .expect("server unresponsive before update");
        assert!(resp.0.starts_with("200"), "{resp:?}");
    }

    let mut served_mid_update = 0;
    let (outcome, stats) = attempt_update_interleaved(
        &mut vm,
        &app,
        from,
        &bench_apply_options(),
        |vm| {
            let resp = one_shot(vm, app.port(), "GET /index.html", 20_000)
                .expect("server must answer while the update is in flight");
            assert!(resp.0.starts_with("200"), "mid-migration response corrupted: {resp:?}");
            served_mid_update += 1;
        },
    );
    assert!(outcome.supported(), "{outcome}");
    let stats = stats.expect("stats on commit");
    assert!(
        stats.lazy_time > std::time::Duration::ZERO,
        "the update must have gone through the lazy phase"
    );
    assert!(served_mid_update >= 1, "requests must be served while the epoch drains");

    // And the updated server serves correctly afterwards.
    let resp = one_shot(&mut vm, app.port(), "GET /about.html", 40_000)
        .expect("server unresponsive after lazy update");
    assert!(resp.0.starts_with("200"), "{resp:?}");
}

#[test]
fn webserver_513_blocks_on_accept_loop() {
    let app = Webserver;
    let mut vm = boot(&app, 2); // 5.1.2
    let (outcome, _) = attempt_update(&mut vm, &app, 2, &bench_apply_options());
    let UpdateOutcome::TimedOut { blocking } = outcome else {
        panic!("5.1.3 must time out, got {outcome}");
    };
    assert!(
        blocking.iter().any(|b| b.contains("acceptLoop") || b.contains("run")),
        "the always-on-stack loops must be reported: {blocking:?}"
    );
}

#[test]
fn emailserver_updates_match_paper() {
    let app = Emailserver;
    let versions = app.versions();
    let mut outcomes = Vec::new();
    let mut osr_releases = Vec::new();
    for from in 0..versions.len() - 1 {
        let to_label = versions[from + 1].label;
        let mut vm = boot(&app, from);
        // Deliver a message and read mail once so real state exists.
        let replies = smtp_send(&mut vm, 2525, "alice", "bob", "hi", 40_000)
            .unwrap_or_else(|| panic!("{to_label}: SMTP unresponsive before update"));
        assert_eq!(replies[0], "250 ok", "{to_label}: {replies:?}");
        let pop = pop_list(&mut vm, 1100, "alice", 40_000)
            .unwrap_or_else(|| panic!("{to_label}: POP unresponsive before update"));
        assert_eq!(pop[0], "+OK", "{to_label}: {pop:?}");

        let (outcome, stats) = attempt_update(&mut vm, &app, from, &bench_apply_options());
        if let Some(stats) = &stats {
            if stats.osr_replacements > 0 {
                osr_releases.push(to_label);
            }
        }
        if outcome.supported() {
            let replies = smtp_send(&mut vm, 2525, "bob", "alice", "yo", 40_000)
                .unwrap_or_else(|| panic!("{to_label}: SMTP unresponsive after update"));
            assert_eq!(replies[0], "250 ok", "{to_label}: {replies:?}");
        }
        outcomes.push((to_label, outcome));
    }

    for (label, outcome) in &outcomes {
        let expected_fail = app.expected_failures().contains(label);
        assert_eq!(
            !outcome.supported(),
            expected_fail,
            "emailserver update to {label}: {outcome}"
        );
    }
    let supported = outcomes.iter().filter(|(_, o)| o.supported()).count();
    assert_eq!(supported, 8, "8 of 9 emailserver updates supported");
    // The paper's §4.3: the always-running processor loops are lifted by
    // OSR when the classes they reference are updated (1.2.3 and 1.3.2).
    assert!(
        osr_releases.contains(&"1.2.3") && osr_releases.contains(&"1.3.2"),
        "OSR expected for 1.2.3 and 1.3.2, got {osr_releases:?}"
    );
}

#[test]
fn emailserver_132_converts_forward_addresses() {
    // The Figure 2/3 update end-to-end on the live server: alice's
    // forwarded addresses (strings "user@domain") become EmailAddress
    // objects, with observable state preserved across the update.
    let app = Emailserver;
    let from = 5; // 1.3.1 → 1.3.2
    let mut vm = boot(&app, from);
    let fwd_before = jvolve_apps::workload::scripted_session(
        &mut vm,
        1100,
        &["USER alice", "FWD", "QUIT"],
        40_000,
    )
    .expect("POP before update");
    assert_eq!(fwd_before[1], "+OK carol@ext.example.org");

    let (outcome, _) = attempt_update(&mut vm, &app, from, &bench_apply_options());
    assert!(outcome.supported(), "{outcome}");

    let fwd_after = jvolve_apps::workload::scripted_session(
        &mut vm,
        1100,
        &["USER alice", "FWD", "QUIT"],
        40_000,
    )
    .expect("POP after update");
    assert_eq!(
        fwd_after[1], "+OK carol@ext.example.org",
        "the custom transformer rebuilt the forward list as EmailAddress objects"
    );
}

#[test]
fn emailserver_13_blocks_on_processing_loops() {
    let app = Emailserver;
    let mut vm = boot(&app, 3); // 1.2.4 → 1.3
    let (outcome, _) = attempt_update(&mut vm, &app, 3, &bench_apply_options());
    let UpdateOutcome::TimedOut { blocking } = outcome else {
        panic!("1.3 must time out, got {outcome}");
    };
    assert!(blocking.iter().any(|b| b.contains("run")), "{blocking:?}");
}

#[test]
fn ftpserver_updates_apply_when_idle() {
    let app = Ftpserver;
    let versions = app.versions();
    for from in 0..versions.len() - 1 {
        let to_label = versions[from + 1].label;
        let mut vm = boot(&app, from);
        // Exercise a full session, then go idle (session thread exits).
        let replies = ftp_retr(&mut vm, 2121, "admin", "adminpw", "/motd.txt", 60_000)
            .unwrap_or_else(|| panic!("{to_label}: FTP unresponsive before update"));
        assert_eq!(replies[1], "230 ok", "{to_label}: {replies:?}");
        assert!(replies[2].starts_with("226"), "{to_label}: {replies:?}");
        // Let the handler thread finish.
        vm.run_slices(200);

        let (outcome, _) = attempt_update(&mut vm, &app, from, &bench_apply_options());
        assert!(outcome.supported(), "ftpserver update to {to_label}: {outcome}");

        let replies = ftp_retr(&mut vm, 2121, "admin", "adminpw", "/motd.txt", 60_000)
            .unwrap_or_else(|| panic!("{to_label}: FTP unresponsive after update"));
        assert!(replies[2].starts_with("226"), "{to_label}: {replies:?}");
    }
}

#[test]
fn ftpserver_108_blocks_with_active_sessions() {
    // Paper §4.4: "JVolve could only apply the update from 1.07 to 1.08
    // when the server was relatively idle" — RequestHandler.run() changed
    // and is always on stack while sessions are active.
    let app = Ftpserver;
    let mut vm = boot(&app, 2); // 1.07
    // Open a session and keep it open (logged in, no QUIT).
    let conn = vm.net_mut().client_connect(2121).unwrap();
    vm.net_mut().client_send(conn, "USER admin adminpw");
    for _ in 0..2_000 {
        vm.step_slice();
        if vm.net_mut().client_recv(conn).is_some() {
            break;
        }
    }

    let (outcome, _) = attempt_update(&mut vm, &app, 2, &bench_apply_options());
    let UpdateOutcome::TimedOut { blocking } = outcome else {
        panic!("1.08 must time out under load, got {outcome}");
    };
    assert!(blocking.iter().any(|b| b.contains("run")), "{blocking:?}");

    // Close the session; the handler exits; the same update now applies.
    vm.net_mut().client_send(conn, "QUIT");
    for _ in 0..2_000 {
        vm.step_slice();
        if vm.net_mut().client_recv(conn).is_some() {
            break;
        }
    }
    vm.net_mut().client_close(conn);
    vm.run_slices(300);
    let (outcome, _) = attempt_update(&mut vm, &app, 2, &bench_apply_options());
    assert!(outcome.supported(), "idle 1.08 update must apply: {outcome}");
}

#[test]
fn twenty_of_twentytwo_updates_supported() {
    // The paper's headline, computed over all three applications with the
    // idle-friendly methodology used in Tables 2–4.
    let mut supported = 0;
    let mut total = 0;
    for app in jvolve_apps::all_apps() {
        let versions = app.versions();
        for from in 0..versions.len() - 1 {
            total += 1;
            let mut vm = boot(app.as_ref(), from);
            let (outcome, _) = attempt_update(&mut vm, app.as_ref(), from, &bench_apply_options());
            if outcome.supported() {
                supported += 1;
            } else {
                let to = versions[from + 1].label;
                assert!(
                    app.expected_failures().contains(&to),
                    "{} update to {to} unexpectedly failed: {outcome}",
                    app.name()
                );
            }
        }
    }
    assert_eq!(total, 22);
    assert_eq!(supported, 20, "20 of 22 updates supported (paper §4)");
}

#[test]
fn emailserver_serves_verified_responses_mid_update() {
    // The 1.2.2 → 1.2.3 class update (OSR lifts the processor loops)
    // through the same interleaved harness path the webserver uses: the
    // SMTP and POP listeners must answer verified responses between
    // controller steps while the update waits for its safe point.
    let app = Emailserver;
    let from = 1; // 1.2.2 → 1.2.3
    let mut vm = boot(&app, from);
    let mut served_mid_update = 0u64;
    let (outcome, _) = attempt_update_interleaved(
        &mut vm,
        &app,
        from,
        &bench_apply_options(),
        |vm| {
            // The shared probe alternates SMTP submission and POP list,
            // verifying each reply through apps::common::verify_replies.
            app.probe(vm, served_mid_update, 40_000)
                .expect("verified response between controller steps");
            served_mid_update += 1;
        },
    );
    assert!(outcome.supported(), "{outcome}");
    assert!(served_mid_update >= 1, "SMTP/POP must serve mid-update");
    // Both protocols still answer on the new version.
    let replies = smtp_send(&mut vm, 2525, "bob", "alice", "hi", 40_000)
        .expect("SMTP unresponsive after update");
    assert_eq!(replies[0], "250 ok", "{replies:?}");
    let pop = pop_list(&mut vm, 1100, "alice", 40_000).expect("POP unresponsive after update");
    assert_eq!(pop[0], "+OK", "{pop:?}");
}

#[test]
fn ftpserver_serves_verified_responses_mid_update() {
    // FTP sessions spawn RequestHandler threads, so the probe pump is
    // bounded: serve a few full sessions mid-update, then idle so the
    // handlers exit and the safe point becomes reachable (paper §4.4's
    // "relatively idle" condition, here produced by the drain itself).
    let app = Ftpserver;
    let from = 0; // 1.05 → 1.06
    let mut vm = boot(&app, from);
    let mut served_mid_update = 0u64;
    let (outcome, _) = attempt_update_interleaved(
        &mut vm,
        &app,
        from,
        &bench_apply_options(),
        |vm| {
            if served_mid_update < 2 {
                app.probe(vm, served_mid_update, 60_000)
                    .expect("verified FTP session between controller steps");
                served_mid_update += 1;
            } else {
                vm.run_slices(50);
            }
        },
    );
    assert!(outcome.supported(), "{outcome}");
    assert!(served_mid_update >= 1, "FTP must serve mid-update");
    let replies = ftp_retr(&mut vm, 2121, "admin", "adminpw", "/motd.txt", 60_000)
        .expect("FTP unresponsive after update");
    assert!(replies[2].starts_with("226"), "{replies:?}");
}
