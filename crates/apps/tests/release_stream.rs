//! The kvstore 20-update release stream, UPT-prepared end to end, applied
//! under sustained verified load — eagerly, lazily, and with updates
//! arriving while a lazy epoch is still draining.

use jvolve_apps::{run_release_stream, Kvstore, StreamOptions};

const UPDATES: usize = jvolve_apps::kvstore::VERSIONS - 1;

#[test]
fn eager_stream_applies_cleanly_under_load() {
    let report = run_release_stream(&Kvstore, &StreamOptions::eager());
    assert!(report.clean(UPDATES), "{report:?}");
    assert_eq!(report.incorrect, 0, "{report:?}");
    assert_eq!(report.unanswered, 0, "{report:?}");
    assert!(report.responses > 0, "{report:?}");
}

#[test]
fn lazy_stream_serializes_mid_drain_arrivals() {
    let report = run_release_stream(&Kvstore, &StreamOptions::lazy());
    assert!(report.clean(UPDATES), "{report:?}");
    assert_eq!(report.incorrect, 0, "{report:?}");
    assert!(
        report.queued_mid_drain >= 1,
        "at least one release must arrive while an epoch drains: {report:?}"
    );
}

#[test]
fn eager_and_lazy_streams_converge() {
    let eager = run_release_stream(&Kvstore, &StreamOptions::eager());
    let lazy = run_release_stream(&Kvstore, &StreamOptions::lazy());
    assert!(eager.clean(UPDATES), "{eager:?}");
    assert!(lazy.clean(UPDATES), "{lazy:?}");
    // Both modes must land on the same final class versions. (Heap
    // fingerprints are *not* compared across modes here: the lazy pump
    // serves more probes, so heap contents legitimately differ. The UPT
    // equivalence oracle compares heap fingerprints under identical
    // workloads.)
    assert_eq!(
        eager.version_fingerprint, lazy.version_fingerprint,
        "registry fingerprints must converge"
    );
}
