//! `fleet_run` command-line contract: unknown, duplicate, malformed, and
//! conflicting flags are rejected with the usage message and exit code 2.

use std::process::Command;

fn run(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fleet_run"))
        .args(args)
        .output()
        .expect("spawn fleet_run");
    (out.status.code().unwrap_or(-1), String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn rejects_bad_usage_with_exit_2() {
    let cases: &[(&[&str], &str)] = &[
        (&[], "--app is required"),
        (&["--app", "webserver", "--bogus", "1"], "unknown flag --bogus"),
        (&["--app", "webserver", "--shards", "2", "--shards", "3"], "duplicate flag --shards"),
        (&["--app", "webserver", "--roll", "--roll"], "duplicate flag --roll"),
        (&["--app", "webserver", "--shards"], "--shards needs a value"),
        (&["--app", "webserver", "--shards", "--roll"], "--shards needs a value, got flag"),
        (&["--app", "webserver", "--shards", "two"], "--shards expects a number"),
        (&["--app", "webserver", "--eager"], "--eager requires --roll"),
        (&["--app", "webserver", "--probes", "3"], "--probes requires --roll"),
        (
            &["--app", "kvstore", "--update-bundle", "some/dir"],
            "--update-bundle requires --roll",
        ),
        (&["--app", "webserver", "stray"], "unexpected argument stray"),
        (&["--app", "nosuchapp"], "unknown app nosuchapp"),
        (&["--app", "webserver", "--no-jit", "--no-jit"], "duplicate flag --no-jit"),
        (&["--app", "webserver", "--jit-threshold"], "--jit-threshold needs a value"),
        (&["--app", "webserver", "--jit-threshold", "soon"], "--jit-threshold expects a number"),
        (
            &["--app", "webserver", "--no-jit", "--jit-threshold", "50"],
            "--jit-threshold conflicts with --no-jit",
        ),
    ];
    for (args, needle) in cases {
        let (code, stderr) = run(args);
        assert_eq!(code, 2, "{args:?} must exit 2; stderr: {stderr}");
        assert!(stderr.contains(needle), "{args:?}: expected {needle:?} in {stderr:?}");
        assert!(stderr.contains("usage:"), "{args:?}: usage must be printed");
    }
}

#[test]
fn serves_a_small_fleet_successfully() {
    let (code, stderr) = run(&["--app", "webserver", "--shards", "2", "--requests", "6"]);
    assert_eq!(code, 0, "stderr: {stderr}");
}

#[test]
fn serves_the_kvstore_app() {
    let (code, stderr) = run(&["--app", "kvstore", "--shards", "2", "--requests", "6"]);
    assert_eq!(code, 0, "stderr: {stderr}");
}

#[test]
fn jit_knobs_pass_through_to_the_shards() {
    // Both spellings of the knob must boot and serve: tier off, and tier
    // on with an aggressive promotion threshold.
    let (code, stderr) =
        run(&["--app", "webserver", "--shards", "2", "--requests", "6", "--no-jit"]);
    assert_eq!(code, 0, "stderr: {stderr}");
    let (code, stderr) = run(&[
        "--app",
        "webserver",
        "--shards",
        "2",
        "--requests",
        "6",
        "--jit-threshold",
        "10",
    ]);
    assert_eq!(code, 0, "stderr: {stderr}");
}
