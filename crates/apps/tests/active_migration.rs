//! The paper's §3.5 future work, exercised: with UpStare-style active-
//! method migration enabled, the two updates JVolve cannot apply — the
//! ones that change methods stuck inside always-running loops — become
//! applicable, taking the supported count from 20 of 22 to 22 of 22.

use jvolve::ApplyOptions;
use jvolve_apps::harness::{attempt_update, boot};
use jvolve_apps::workload::{one_shot, smtp_send};
use jvolve_apps::{AppInstance, Emailserver, Webserver};

fn migrating_opts() -> ApplyOptions {
    ApplyOptions {
        timeout_slices: 3_000,
        migrate_active_methods: true,
        ..ApplyOptions::default()
    }
}

#[test]
fn webserver_513_applies_with_active_migration() {
    // 5.1.2 -> 5.1.3 changes the always-on-stack accept loop and worker
    // loops; the alignment-derived pc maps migrate those frames in place.
    let app = Webserver;
    let mut vm = boot(&app, 2);
    let resp = one_shot(&mut vm, app.port(), "GET /index.html", 30_000).expect("serves");
    assert!(resp.0.starts_with("200"));

    let update = jvolve_apps::harness::prepare_next(&app, 2);
    let stats = jvolve::apply(&mut vm, &update, &migrating_opts())
        .expect("5.1.3 must apply with migration");
    assert!(
        stats.active_migrations >= 2,
        "the accept loop and worker loops must have been migrated: {stats:?}"
    );

    // The 5.1.3 server is fully functional: it serves, counts accepts
    // through the new static, and enforces the new request filter.
    let resp = one_shot(&mut vm, app.port(), "GET /index.html", 40_000)
        .expect("serves after migration");
    assert!(resp.0.starts_with("200"), "{resp:?}");
    let denied = one_shot(&mut vm, app.port(), "GET /../etc", 40_000)
        .expect("filter responds");
    assert!(denied.0.starts_with("403"), "new 5.1.3 code is live: {denied:?}");
    let accepted = vm.read_static("ThreadedServer", "accepted");
    assert!(
        accepted.as_int() >= 2,
        "the migrated accept loop increments the new counter: {accepted:?}"
    );
}

#[test]
fn emailserver_13_applies_with_active_migration() {
    // 1.2.4 -> 1.3 reworks configuration and changes all three processor
    // loops.
    let app = Emailserver;
    let mut vm = boot(&app, 3);
    let replies = smtp_send(&mut vm, 2525, "alice", "bob", "pre", 60_000).expect("SMTP serves");
    assert_eq!(replies[0], "250 ok");

    let mut update = jvolve_apps::harness::prepare_next(&app, 3);
    // The 1.3 code consults the *added* FileConfig class, whose statics
    // start at defaults; as in the paper's model, the developer customizes
    // a transformer to initialize the new configuration state.
    let patched = update.transformers_source.replace(
        "static method jvolve_class_User(): void {",
        "static method jvolve_class_User(): void {\n    FileConfig.load();",
    );
    assert_ne!(patched, update.transformers_source, "patch point exists");
    update.set_transformers_source(patched);

    let stats =
        jvolve::apply(&mut vm, &update, &migrating_opts()).expect("1.3 must apply with migration");
    assert!(stats.active_migrations >= 3, "{stats:?}");

    // New 1.3 behaviour is live: the customized transformer initialized
    // the new configuration and mail still flows through the migrated
    // processor loops.
    assert_eq!(vm.read_static("FileConfig", "maxLine").as_int(), 1024);
    let replies = smtp_send(&mut vm, 2525, "bob", "alice", "post", 60_000)
        .expect("SMTP serves after migration");
    assert_eq!(replies[0], "250 ok");
}

#[test]
fn all_22_updates_apply_with_active_migration() {
    let mut supported = 0;
    let mut total = 0;
    let mut migrations = 0;
    for app in jvolve_apps::all_apps() {
        let versions = app.versions();
        for from in 0..versions.len() - 1 {
            total += 1;
            let mut vm = boot(app.as_ref(), from);
            let (outcome, stats) =
                attempt_update(&mut vm, app.as_ref(), from, &migrating_opts());
            if let Some(s) = stats {
                migrations += s.active_migrations;
            }
            assert!(
                outcome.supported(),
                "{} update to {} with migration: {outcome}",
                app.name(),
                versions[from + 1].label
            );
            supported += 1;
        }
    }
    assert_eq!(total, 22);
    assert_eq!(supported, 22, "future-work extension lifts both failures");
    assert!(migrations >= 5, "the two hard updates used migration");
}

#[test]
fn migration_respects_the_blacklist() {
    // Category-3 restrictions are semantic (version consistency): even
    // with migration on, a blacklisted method must block the update.
    use jvolve_classfile::MethodRef;
    let app = Webserver;
    let mut vm = boot(&app, 0);
    let mut update = jvolve_apps::harness::prepare_next(&app, 0);
    update.blacklist([MethodRef::new("ThreadedServer", "acceptLoop")]);
    let opts = ApplyOptions {
        timeout_slices: 150,
        migrate_active_methods: true,
        ..ApplyOptions::default()
    };
    let err = jvolve::apply(&mut vm, &update, &opts).unwrap_err();
    assert!(matches!(err, jvolve::UpdateError::Timeout { .. }), "{err}");
}
