//! Fleet serving and rolling-update coverage: N shards behind the
//! round-robin acceptor serve verified traffic, and a rolling lazy
//! update promotes shard-by-shard with zero dropped or incorrect
//! responses.

use std::sync::Arc;

use jvolve_apps::fleet::{Fleet, RollOptions};
use jvolve_apps::harness::{app_vm_config, bench_apply_options, prepare_next};
use jvolve_apps::{AppInstance, GuestApp, Webserver};
use jvolve_vm::VmConfig;

fn lazy_config() -> VmConfig {
    let mut config = app_vm_config();
    config.lazy_migration = true;
    config
}

#[test]
fn fleet_serves_round_robin_across_shards() {
    let app: Arc<dyn AppInstance> = Arc::new(Webserver);
    let classes = Webserver.versions()[0].compile();
    let mut fleet = Fleet::boot(app, classes, 3, &app_vm_config());
    let report = fleet.run_requests(30);
    assert_eq!(report.completed, 30, "all requests answered: {report:?}");
    assert_eq!(report.incorrect, 0, "all responses verified: {report:?}");
    fleet.shutdown();
}

#[test]
fn rolling_lazy_update_drops_nothing() {
    let app: Arc<dyn AppInstance> = Arc::new(Webserver);
    let classes = Webserver.versions()[0].compile();
    let update = prepare_next(&Webserver, 0);
    let mut fleet = Fleet::boot(app, classes, 3, &lazy_config());
    fleet.run_requests(9);

    let report = fleet.roll(&update, &bench_apply_options(), &RollOptions::default());
    assert!(!report.rolled_back, "roll must promote every shard: {report:?}");
    assert_eq!(report.shards.len(), 3);
    assert!(report.shards.iter().all(|s| s.healthy), "{report:?}");
    assert_eq!(report.dropped, 0, "no request dropped mid-roll");
    assert_eq!(report.incorrect, 0, "no incorrect response mid-roll");
    assert!(
        report.mid_roll_responses > 0,
        "the fleet must keep serving while a shard updates"
    );
    assert!(report.fingerprints_converged(), "all shards on one version");

    // The updated fleet still serves.
    let after = fleet.run_requests(9);
    assert_eq!(after.completed, 9);
    assert_eq!(after.incorrect, 0);
    fleet.shutdown();
}
