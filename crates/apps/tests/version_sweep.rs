//! Every version of every guest application must boot and serve its
//! protocol correctly — the fixture quality the update experiments stand
//! on ("developers prepare a new version and fully test it using standard
//! procedures", paper §2.1).

use jvolve_apps::harness::boot;
use jvolve_apps::workload::{ftp_retr, one_shot, pop_list, scripted_session, smtp_send};
use jvolve_apps::{AppInstance, Emailserver, Ftpserver, GuestApp, Webserver};

#[test]
fn webserver_all_versions_serve() {
    let app = Webserver;
    for (i, version) in app.versions().iter().enumerate() {
        let mut vm = boot(&app, i);
        let (ok, _) = one_shot(&mut vm, app.port(), "GET /index.html", 30_000)
            .unwrap_or_else(|| panic!("{} unresponsive", version.label));
        assert_eq!(ok, "200 <html>welcome</html>", "{}", version.label);
        let (missing, _) = one_shot(&mut vm, app.port(), "GET /nope.html", 30_000)
            .unwrap_or_else(|| panic!("{} unresponsive", version.label));
        assert!(missing.starts_with("404"), "{}: {missing}", version.label);
        // The request filter (5.1.3+) rejects traversal.
        if i >= 3 {
            let (denied, _) = one_shot(&mut vm, app.port(), "GET /../secret", 30_000)
                .unwrap_or_else(|| panic!("{} unresponsive", version.label));
            assert!(denied.starts_with("403"), "{}: {denied}", version.label);
        }
    }
}

#[test]
fn emailserver_all_versions_deliver_mail() {
    let app = Emailserver;
    for (i, version) in app.versions().iter().enumerate() {
        let mut vm = boot(&app, i);
        // Send two messages to bob.
        for text in ["hello", "again"] {
            let replies = smtp_send(&mut vm, 2525, "alice", "bob", text, 60_000)
                .unwrap_or_else(|| panic!("{}: SMTP unresponsive", version.label));
            assert_eq!(replies[0], "250 ok", "{}: {replies:?}", version.label);
        }
        // Let the sender thread flush the queue (it sleeps 20 ticks).
        vm.run_slices(300);
        // Bob's mailbox holds them.
        let pop = pop_list(&mut vm, 1100, "bob", 60_000)
            .unwrap_or_else(|| panic!("{}: POP unresponsive", version.label));
        assert_eq!(pop[0], "+OK", "{}", version.label);
        assert!(
            pop[1].contains('2'),
            "{}: expected 2 messages, got {:?}",
            version.label,
            pop[1]
        );
        // Alice's forwards survive in every representation.
        let fwd = scripted_session(&mut vm, 1100, &["USER alice", "FWD", "QUIT"], 60_000)
            .unwrap_or_else(|| panic!("{}: POP FWD unresponsive", version.label));
        assert_eq!(fwd[1], "+OK carol@ext.example.org", "{}", version.label);
        // Unknown users are rejected.
        let bad = scripted_session(&mut vm, 1100, &["USER mallory"], 60_000)
            .unwrap_or_else(|| panic!("{}: POP unresponsive", version.label));
        assert_eq!(bad[0], "-ERR", "{}", version.label);
    }
}

#[test]
fn ftpserver_all_versions_transfer_files() {
    let app = Ftpserver;
    for (i, version) in app.versions().iter().enumerate() {
        let mut vm = boot(&app, i);
        let replies = ftp_retr(&mut vm, 2121, "admin", "adminpw", "/motd.txt", 60_000)
            .unwrap_or_else(|| panic!("{}: FTP unresponsive", version.label));
        assert_eq!(replies[0], "220 ready", "{}", version.label);
        assert_eq!(replies[1], "230 ok", "{}", version.label);
        assert_eq!(replies[2], "226 welcome aboard", "{}", version.label);

        // Bad credentials are rejected; secret files are denied.
        let bad = ftp_retr(&mut vm, 2121, "admin", "wrong", "/motd.txt", 60_000)
            .unwrap_or_else(|| panic!("{}: FTP unresponsive", version.label));
        assert_eq!(bad[1], "530 bad", "{}", version.label);
        let denied = ftp_retr(&mut vm, 2121, "guest", "guestpw", "/secret.txt", 60_000)
            .unwrap_or_else(|| panic!("{}: FTP unresponsive", version.label));
        assert_eq!(denied[2], "550 denied", "{}", version.label);
        let _ = i;
    }
}

#[test]
fn ftpserver_sessions_run_concurrently() {
    // One handler thread per connection: two interleaved sessions.
    let mut vm = boot(&Ftpserver, 3);
    let c1 = vm.net_mut().client_connect(2121).unwrap();
    let c2 = vm.net_mut().client_connect(2121).unwrap();
    vm.net_mut().client_send(c1, "USER admin adminpw");
    vm.net_mut().client_send(c2, "USER guest guestpw");
    let mut got1 = Vec::new();
    let mut got2 = Vec::new();
    for _ in 0..20_000 {
        vm.step_slice();
        if let Some(r) = vm.net_mut().client_recv(c1) {
            got1.push(r);
        }
        if let Some(r) = vm.net_mut().client_recv(c2) {
            got2.push(r);
        }
        if got1.len() >= 2 && got2.len() >= 2 {
            break;
        }
    }
    assert_eq!(got1, ["220 ready", "230 ok"]);
    assert_eq!(got2, ["220 ready", "230 ok"]);
    // Both sessions stay live simultaneously.
    let handlers = vm
        .threads()
        .filter(|t| t.name.contains("RequestHandler") && t.is_live())
        .count();
    assert_eq!(handlers, 2);
}
