//! Long-lived servers surviving *chains* of consecutive live updates with
//! traffic between each — the deployment pattern DSU exists for ("one to
//! two years' worth of releases", paper §4). The unsupported releases
//! (webserver 5.1.3, emailserver 1.3) require a restart, exactly as they
//! would have in the paper's deployments.

use jvolve_apps::harness::{attempt_update, bench_apply_options, boot};
use jvolve_apps::workload::{one_shot, pop_list, scripted_session, smtp_send};
use jvolve_apps::{AppInstance, Emailserver, GuestApp, Webserver};

#[test]
fn webserver_survives_seven_consecutive_updates() {
    // Boot at 5.1.3 and ride every remaining release on one VM.
    let app = Webserver;
    let versions = app.versions();
    let start = 3; // 5.1.3
    let mut vm = boot(&app, start);
    let mut served = 0u64;
    for from in start..versions.len() - 1 {
        let to = versions[from + 1].label;
        for _ in 0..3 {
            let resp = one_shot(&mut vm, app.port(), "GET /index.html", 40_000)
                .unwrap_or_else(|| panic!("unresponsive before {to}"));
            assert!(resp.0.starts_with("200"), "{to}: {resp:?}");
            served += 1;
        }
        let (outcome, _) = attempt_update(&mut vm, &app, from, &bench_apply_options());
        assert!(outcome.supported(), "update to {to} on the long-lived VM: {outcome}");
    }
    // After all seven updates the server still serves, on the same VM,
    // with the same worker threads.
    for path in ["/index.html", "/about.html", "/data.json"] {
        let resp = one_shot(&mut vm, app.port(), &format!("GET {path}"), 40_000)
            .expect("final version serves");
        assert!(resp.0.starts_with("200"), "{resp:?}");
        served += 1;
    }
    assert_eq!(vm.update_count(), 7);
    assert!(served >= 24);
}

#[test]
fn emailserver_survives_five_consecutive_updates_with_mail_state() {
    // Boot at 1.3 and ride 1.3.1 → 1.4 on one VM; mail delivered under
    // early versions must remain readable under the last.
    let app = Emailserver;
    let versions = app.versions();
    let start = 4; // 1.3
    let mut vm = boot(&app, start);
    let mut sent = 0i64;
    for from in start..versions.len() - 1 {
        let to = versions[from + 1].label;
        let replies = smtp_send(&mut vm, 2525, "alice", "bob", &format!("msg{from}"), 60_000)
            .unwrap_or_else(|| panic!("SMTP unresponsive before {to}"));
        assert_eq!(replies[0], "250 ok", "{to}: {replies:?}");
        sent += 1;
        // Let the sender thread flush before updating.
        vm.run_slices(300);

        let (outcome, _) = attempt_update(&mut vm, &app, from, &bench_apply_options());
        assert!(outcome.supported(), "update to {to} on the long-lived VM: {outcome}");
    }
    assert_eq!(vm.update_count(), 5);

    // All mail sent across five program versions is still in bob's box —
    // the Mailbox/MailMessage instances were transformed at each update.
    let pop = pop_list(&mut vm, 1100, "bob", 60_000).expect("POP serves at 1.4");
    assert_eq!(pop[0], "+OK");
    assert!(
        pop[1].ends_with(&sent.to_string()),
        "expected {sent} messages, got {:?}",
        pop[1]
    );

    // And alice's forwards survived the String[] -> EmailAddress[]
    // conversion performed mid-chain by the 1.3.2 custom transformer.
    let fwd = scripted_session(&mut vm, 1100, &["USER alice", "FWD", "QUIT"], 60_000)
        .expect("FWD serves");
    assert_eq!(fwd[1], "+OK carol@ext.example.org");

    // The 1.4 vacation feature works on the carried-over User objects.
    let vac = scripted_session(&mut vm, 1100, &["USER alice", "VAC", "QUIT"], 60_000)
        .expect("VAC serves");
    assert_eq!(vac[1], "+OK here", "vacationOn defaults to 0 after the update");
}

#[test]
fn early_webserver_chain_up_to_the_unsupported_release() {
    // 5.1.0 → 5.1.1 → 5.1.2 on one VM; then 5.1.3 fails as always.
    let app = Webserver;
    let mut vm = boot(&app, 0);
    for from in 0..2 {
        let (outcome, _) = attempt_update(&mut vm, &app, from, &bench_apply_options());
        assert!(outcome.supported(), "{outcome}");
        let resp = one_shot(&mut vm, app.port(), "GET /index.html", 40_000).expect("serves");
        assert!(resp.0.starts_with("200"));
    }
    let (outcome, _) = attempt_update(&mut vm, &app, 2, &bench_apply_options());
    assert!(!outcome.supported(), "5.1.3 stays unsupported on a long-lived VM");
    // The 5.1.2 code keeps serving after the aborted update.
    let resp = one_shot(&mut vm, app.port(), "GET /index.html", 40_000).expect("serves");
    assert!(resp.0.starts_with("200"));
    assert_eq!(vm.update_count(), 2);
}

#[test]
fn statics_survive_class_updates_across_releases() {
    // 5.1.5 turns Stats into a class update (new fields + methods); the
    // request counters accumulated by the running server must survive via
    // the default class transformer.
    let app = Webserver;
    let mut vm = boot(&app, 4); // 5.1.4
    for _ in 0..5 {
        one_shot(&mut vm, app.port(), "GET /index.html", 40_000).expect("serves");
    }
    let before = vm.call_static_sync("Stats", "report", &[]).expect("report runs").unwrap();
    let before = vm.display_value(before);
    assert!(before.contains("requests=5"), "{before}");

    let (outcome, _) = attempt_update(&mut vm, &app, 4, &bench_apply_options());
    assert!(outcome.supported(), "{outcome}");

    let after = vm.call_static_sync("Stats", "report", &[]).expect("report runs").unwrap();
    let after = vm.display_value(after);
    assert!(
        after.contains("requests=5") && after.contains("bytes=0"),
        "counter preserved, new fields defaulted: {after}"
    );

    // New traffic keeps counting on the preserved counter.
    for _ in 0..2 {
        one_shot(&mut vm, app.port(), "GET /index.html", 40_000).expect("serves");
    }
    let later = vm.call_static_sync("Stats", "report", &[]).expect("report runs").unwrap();
    let later = vm.display_value(later);
    assert!(later.contains("requests=7"), "{later}");
}
