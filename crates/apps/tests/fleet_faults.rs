//! Fleet fault injection: fail one shard's update mid-roll and assert
//! the coordinator rolls the whole fleet back to the old version — every
//! shard's registry fingerprint bit-identical — with no dropped
//! responses.
//!
//! Two failure shapes:
//! * **install failure** — the faulted shard's transformers class does
//!   not compile, so its controller aborts mid-install and restores the
//!   shard in place by replaying its rollback ledger;
//! * **health-check timeout** — the faulted shard *commits*, but its
//!   probe responses never reach the coordinator in time, so the
//!   coordinator must redeploy it to the old version alongside every
//!   already-promoted shard.

use std::sync::Arc;

use jvolve_apps::fleet::{Fleet, RollFault, RollOptions};
use jvolve_apps::harness::{app_vm_config, bench_apply_options, prepare_next};
use jvolve_apps::{AppInstance, GuestApp, Webserver};
use jvolve_vm::VmConfig;

fn lazy_config() -> VmConfig {
    let mut config = app_vm_config();
    config.lazy_migration = true;
    config
}

/// Boots a 3-shard fleet at webserver 5.1.0 and snapshots the old
/// version's fingerprint.
fn fleet_with_baseline() -> (Fleet, String) {
    let app: Arc<dyn AppInstance> = Arc::new(Webserver);
    let classes = Webserver.versions()[0].compile();
    let mut fleet = Fleet::boot(app, classes, 3, &lazy_config());
    fleet.run_requests(6);
    let baseline = fleet.version_fingerprints();
    assert!(
        baseline.windows(2).all(|w| w[0] == w[1]),
        "freshly booted shards must fingerprint identically"
    );
    (fleet, baseline.into_iter().next().unwrap())
}

fn assert_rolled_back_to(fleet_report: &jvolve_apps::RollReport, baseline: &str) {
    assert!(fleet_report.rolled_back, "the roll must have been abandoned");
    assert_eq!(fleet_report.dropped, 0, "no request dropped through the rollback");
    assert_eq!(fleet_report.incorrect, 0, "no incorrect response through the rollback");
    assert!(
        fleet_report.fingerprints_converged(),
        "every shard must converge after rollback"
    );
    for (i, fp) in fleet_report.fingerprints.iter().enumerate() {
        assert_eq!(
            fp, baseline,
            "shard {i} must be bit-identical to the pre-roll registry"
        );
    }
}

#[test]
fn install_failure_mid_roll_rolls_the_fleet_back() {
    let (mut fleet, baseline) = fleet_with_baseline();
    let update = prepare_next(&Webserver, 0);
    // Shard 0 promotes; shard 1's install fails after shard 0 already
    // runs the new version — the coordinator must pull shard 0 back.
    let ropts = RollOptions { fault: Some(RollFault::InstallFailure { shard: 1 }), ..RollOptions::default() };
    let report = fleet.roll(&update, &bench_apply_options(), &ropts);

    assert_eq!(report.shards.len(), 2, "the roll stops at the failing shard");
    assert!(report.shards[0].healthy, "{report:?}");
    assert!(!report.shards[1].committed, "faulted install must abort: {report:?}");
    assert_rolled_back_to(&report, &baseline);
    assert!(
        report.rollback_reason.as_deref().unwrap_or("").contains("shard 1"),
        "{report:?}"
    );

    // The rolled-back fleet still serves the old version.
    let after = fleet.run_requests(9);
    assert_eq!(after.completed, 9);
    assert_eq!(after.incorrect, 0);
    fleet.shutdown();
}

#[test]
fn health_timeout_mid_roll_rolls_the_fleet_back() {
    let (mut fleet, baseline) = fleet_with_baseline();
    let update = prepare_next(&Webserver, 0);
    // Shard 1 commits its update but its health probes "time out": the
    // coordinator must redeploy it (a committed shard cannot replay its
    // spent ledger) together with already-promoted shard 0.
    let ropts = RollOptions { fault: Some(RollFault::HealthTimeout { shard: 1 }), ..RollOptions::default() };
    let report = fleet.roll(&update, &bench_apply_options(), &ropts);

    assert_eq!(report.shards.len(), 2, "the roll stops at the unhealthy shard");
    assert!(report.shards[0].healthy, "{report:?}");
    assert!(
        report.shards[1].committed && !report.shards[1].healthy,
        "the faulted shard commits but flunks the health gate: {report:?}"
    );
    assert_rolled_back_to(&report, &baseline);

    let after = fleet.run_requests(9);
    assert_eq!(after.completed, 9);
    assert_eq!(after.incorrect, 0);
    fleet.shutdown();
}
