//! The release-stream harness: a whole UPT-prepared version chain applied
//! to one serving VM under sustained verified load.
//!
//! This is the end-to-end exercise of the PR's pipeline: every update is
//! prepared by [`jvolve_upt`] (automatic diff, classification, generated
//! default transformers), enqueued on a [`jvolve::UpdateQueue`], and
//! applied strictly serialized while the embedder's pump keeps verified
//! client traffic flowing. In lazy mode the stream also exercises
//! *overlapping* arrivals: with [`StreamOptions::queue_mid_drain`] set,
//! the next release is pushed while the previous update's lazy epoch is
//! still draining — the queue must hold it until commit, and the
//! [`StreamReport`] counts how often that happened.
//!
//! Correctness is measured at the protocol level: every probe is a full
//! verified exchange (for the kvstore, a `SET` followed by a `GET` that
//! must return the exact value written), and the gate is **zero
//! incorrect responses** across the entire stream. Final heap and
//! registry fingerprints let callers check eager/lazy convergence: both
//! modes must end in bit-identical states.

use std::collections::VecDeque;
use std::time::Duration;

use jvolve::{ApplyOptions, Update, UpdatePhase, UpdateQueue};
use jvolve_upt::{prepare_classes, UptOptions};
use jvolve_vm::{Vm, VmConfig};

use crate::common::{GuestApp, ProbeFailure};
use crate::harness::{app_vm_config, bench_apply_options, boot_with};

/// Release-stream knobs.
#[derive(Clone, Debug)]
pub struct StreamOptions {
    /// Commit updates in lazy-migration mode.
    pub lazy: bool,
    /// Push the next release while the previous update's lazy epoch is
    /// still draining (requires `lazy`; a no-op for eager streams, whose
    /// controllers have no drain window).
    pub queue_mid_drain: bool,
    /// Verified probes served between consecutive updates.
    pub probes_between_updates: u64,
    /// Slice budget per probe exchange.
    pub probe_budget: usize,
    /// Lazy scavenge batch (small values stretch the epoch so mid-drain
    /// arrivals actually land mid-drain).
    pub lazy_scavenge_batch: usize,
    /// Lazy per-step cell budget.
    pub lazy_step_cells: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            lazy: false,
            queue_mid_drain: false,
            probes_between_updates: 5,
            probe_budget: 30_000,
            lazy_scavenge_batch: 8,
            lazy_step_cells: 512,
        }
    }
}

impl StreamOptions {
    /// An eager stream.
    pub fn eager() -> Self {
        StreamOptions::default()
    }

    /// A lazy stream with mid-drain queueing on.
    pub fn lazy() -> Self {
        StreamOptions { lazy: true, queue_mid_drain: true, ..StreamOptions::default() }
    }
}

/// What a release stream did, end to end.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Updates that committed (the full chain is `versions - 1`).
    pub versions_applied: usize,
    /// Updates that aborted (must be 0 for a green stream).
    pub aborted: usize,
    /// Probes answered and verified correct.
    pub responses: u64,
    /// Probes answered **incorrectly** — the stream gate requires 0.
    pub incorrect: u64,
    /// Probes that got no answer within their budget.
    pub unanswered: u64,
    /// Updates that arrived while a lazy epoch was still draining and
    /// were serialized behind it.
    pub queued_mid_drain: usize,
    /// Longest single-update pause (`UpdateStats::total_time`; lazy
    /// migration time is not pause).
    pub max_pause: Duration,
    /// Final heap fingerprint (eager and lazy streams must agree).
    pub heap_fingerprint: u64,
    /// Final registry version fingerprint.
    pub version_fingerprint: String,
}

impl StreamReport {
    /// The stream gate: every update committed and not one verified
    /// exchange returned a wrong answer.
    pub fn clean(&self, expected_updates: usize) -> bool {
        self.versions_applied == expected_updates && self.aborted == 0 && self.incorrect == 0
    }
}

/// Prepares the update `from → from + 1` of `app` through the UPT — the
/// automatic path: diff, classification, generated default transformers.
/// (Apps whose releases need hand-written transformers pass them as
/// per-class overrides; the kvstore chain is designed so defaults carry
/// all state.)
///
/// # Panics
///
/// Panics if preparation fails — app fixtures must always prepare.
pub fn prepare_via_upt(app: &dyn GuestApp, from: usize) -> Update {
    let versions = app.versions();
    let old = versions[from].compile();
    let new = versions[from + 1].compile();
    let opts = UptOptions::with_prefix(versions[from + 1].prefix);
    match prepare_classes(&old, &new, &opts) {
        Ok(release) => release.update,
        Err(e) => panic!("{}: UPT preparation {}→{} failed: {e}", app.name(), from, from + 1),
    }
}

/// Runs `app`'s entire release stream on one VM under verified load.
///
/// # Panics
///
/// Panics if the app fails to boot (fixture bug). Update aborts and
/// wrong responses are *reported*, not panicked on — gates assert on the
/// [`StreamReport`].
pub fn run_release_stream(app: &dyn GuestApp, opts: &StreamOptions) -> StreamReport {
    let config = VmConfig { lazy_migration: opts.lazy, ..app_vm_config() };
    let mut vm = boot_with(app, 0, config);

    let apply_opts = ApplyOptions {
        lazy_scavenge_batch: opts.lazy_scavenge_batch,
        lazy_step_cells: opts.lazy_step_cells,
        ..bench_apply_options()
    };

    let mut report = StreamReport {
        versions_applied: 0,
        aborted: 0,
        responses: 0,
        incorrect: 0,
        unanswered: 0,
        queued_mid_drain: 0,
        max_pause: Duration::ZERO,
        heap_fingerprint: 0,
        version_fingerprint: String::new(),
    };
    let mut seq = 0u64;
    let mut probe_once = |vm: &mut Vm, report: &mut StreamReport| {
        match app.probe(vm, seq, opts.probe_budget) {
            Ok(_) => report.responses += 1,
            Err(ProbeFailure::Incorrect { .. }) => report.incorrect += 1,
            Err(ProbeFailure::Unresponsive) => report.unanswered += 1,
        }
        seq += 1;
    };

    let n = app.versions().len();
    let mut prepared: VecDeque<Update> = (0..n - 1).map(|i| prepare_via_upt(app, i)).collect();

    // Seed the store with traffic before any update arrives.
    for _ in 0..opts.probes_between_updates {
        probe_once(&mut vm, &mut report);
    }

    let mut queue = UpdateQueue::new();
    while let Some(update) = prepared.pop_front() {
        queue.push(update);
        let outcomes = queue.drain(&mut vm, &apply_opts, |vm, q| {
            probe_once(vm, &mut report);
            // A new release lands while the lazy epoch is still draining:
            // the queue must serialize it behind the commit.
            if opts.queue_mid_drain
                && q.in_flight_phase() == Some(UpdatePhase::LazyMigrating)
                && q.is_empty()
            {
                if let Some(next) = prepared.pop_front() {
                    q.push(next);
                }
            }
        });
        for outcome in outcomes {
            if outcome.enqueued_during == Some(UpdatePhase::LazyMigrating) {
                report.queued_mid_drain += 1;
            }
            match outcome.result {
                Ok(stats) => {
                    report.versions_applied += 1;
                    report.max_pause = report.max_pause.max(stats.total_time);
                }
                Err(_) => report.aborted += 1,
            }
        }
        // Steady-state traffic between releases.
        for _ in 0..opts.probes_between_updates {
            probe_once(&mut vm, &mut report);
        }
    }

    report.heap_fingerprint = vm.heap_fingerprint();
    report.version_fingerprint = vm.registry().version_fingerprint();
    report
}
