//! Shared plumbing for the versioned guest applications.

use std::fmt;

use jvolve_classfile::ClassFile;
use jvolve_vm::Vm;

/// One release of a guest application.
#[derive(Clone, Debug)]
pub struct AppVersion {
    /// Human version label, e.g. "5.1.3".
    pub label: &'static str,
    /// Version prefix for old-class renaming, e.g. "v513_".
    pub prefix: &'static str,
    /// Full MJ source of this release.
    pub source: String,
}

impl AppVersion {
    /// Compiles this release.
    ///
    /// # Panics
    ///
    /// Panics on compile errors — app sources are fixtures; a failure is a
    /// bug in this crate (and is caught by its tests).
    pub fn compile(&self) -> Vec<ClassFile> {
        match jvolve_lang::compile(&self.source) {
            Ok(classes) => classes,
            Err(e) => panic!("app version {} does not compile:\n{e}", self.label),
        }
    }
}

/// Why a health probe against a serving app failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProbeFailure {
    /// No response arrived within the probe's slice budget.
    Unresponsive,
    /// A response arrived but failed verification.
    Incorrect {
        /// The offending reply (or reply list, rendered).
        got: String,
    },
}

impl fmt::Display for ProbeFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeFailure::Unresponsive => f.write_str("no response within budget"),
            ProbeFailure::Incorrect { got } => write!(f, "incorrect response: {got}"),
        }
    }
}

/// The shared response-verification helper: every probe — webserver,
/// emailserver, ftpserver, single-VM harness or fleet shard — funnels its
/// replies through this one checker. `expect` pairs a reply index with
/// the status prefix required there (prefixes, not full bodies, so one
/// probe verifies every release of an app). Returns the first checked
/// reply on success.
pub fn verify_replies(
    replies: Option<Vec<String>>,
    expect: &[(usize, &str)],
) -> Result<String, ProbeFailure> {
    let replies = replies.ok_or(ProbeFailure::Unresponsive)?;
    for &(idx, prefix) in expect {
        match replies.get(idx) {
            Some(r) if r.starts_with(prefix) => {}
            _ => return Err(ProbeFailure::Incorrect { got: format!("{replies:?}") }),
        }
    }
    let first = expect.first().map_or(0, |&(idx, _)| idx);
    Ok(replies.into_iter().nth(first).unwrap_or_default())
}

/// A guest application embeddable in one VM shard: everything a fleet
/// needs to boot it, route traffic to it, and health-check it — without
/// knowing its release stream. `Send + Sync` because a fleet coordinator
/// hands one `&'static` instance to every shard thread.
pub trait AppInstance: Send + Sync {
    /// Application name ("webserver", "emailserver", "ftpserver").
    fn name(&self) -> &'static str;
    /// The port its server listens on.
    fn port(&self) -> u16;
    /// The main class spawned to start the server.
    fn main_class(&self) -> &'static str;
    /// Runs one complete, *verified* protocol exchange against a VM this
    /// app is serving in: issue a request (varied by `seq` where the
    /// protocol allows), await the reply within `max_slices`, and check
    /// it through [`verify_replies`]. This is both the fleet's request
    /// path and its health gate.
    fn probe(&self, vm: &mut Vm, seq: u64, max_slices: usize) -> Result<String, ProbeFailure>;
    /// Scheduler slices to run after draining client traffic so
    /// session-handler threads exit (apps whose updates only apply when
    /// idle return a nonzero settle budget).
    fn settle_slices(&self) -> usize {
        0
    }
}

/// A versioned guest application: an [`AppInstance`] plus its release
/// stream.
pub trait GuestApp: AppInstance {
    /// All releases, oldest first.
    fn versions(&self) -> Vec<AppVersion>;
    /// Index of releases whose *update from the previous version* is
    /// expected to time out (always-on-stack changed methods).
    fn expected_failures(&self) -> Vec<&'static str>;
}

/// Builds a version prefix like `v513_` from a label like `5.1.3`.
pub fn prefix_of(label: &str) -> String {
    format!("v{}_", label.replace('.', ""))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_formatting() {
        assert_eq!(prefix_of("5.1.3"), "v513_");
        assert_eq!(prefix_of("1.3.2"), "v132_");
    }

    #[test]
    fn verify_replies_checks_prefixes() {
        let ok = verify_replies(
            Some(vec!["220 ready".into(), "230 ok".into()]),
            &[(0, "220"), (1, "230")],
        );
        assert_eq!(ok.unwrap(), "220 ready");
        assert_eq!(verify_replies(None, &[(0, "200")]), Err(ProbeFailure::Unresponsive));
        let wrong = verify_replies(Some(vec!["500 oops".into()]), &[(0, "200")]);
        assert!(matches!(wrong, Err(ProbeFailure::Incorrect { .. })));
        let missing = verify_replies(Some(vec!["250 ok".into()]), &[(0, "250"), (1, "221")]);
        assert!(matches!(missing, Err(ProbeFailure::Incorrect { .. })));
    }
}
