//! Shared plumbing for the versioned guest applications.

use jvolve_classfile::ClassFile;

/// One release of a guest application.
#[derive(Clone, Debug)]
pub struct AppVersion {
    /// Human version label, e.g. "5.1.3".
    pub label: &'static str,
    /// Version prefix for old-class renaming, e.g. "v513_".
    pub prefix: &'static str,
    /// Full MJ source of this release.
    pub source: String,
}

impl AppVersion {
    /// Compiles this release.
    ///
    /// # Panics
    ///
    /// Panics on compile errors — app sources are fixtures; a failure is a
    /// bug in this crate (and is caught by its tests).
    pub fn compile(&self) -> Vec<ClassFile> {
        match jvolve_lang::compile(&self.source) {
            Ok(classes) => classes,
            Err(e) => panic!("app version {} does not compile:\n{e}", self.label),
        }
    }
}

/// A versioned guest application.
pub trait GuestApp {
    /// Application name ("webserver", "emailserver", "ftpserver").
    fn name(&self) -> &'static str;
    /// The port its server listens on.
    fn port(&self) -> u16;
    /// The main class spawned to start the server.
    fn main_class(&self) -> &'static str;
    /// All releases, oldest first.
    fn versions(&self) -> Vec<AppVersion>;
    /// Index of releases whose *update from the previous version* is
    /// expected to time out (always-on-stack changed methods).
    fn expected_failures(&self) -> Vec<&'static str>;
}

/// Builds a version prefix like `v513_` from a label like `5.1.3`.
pub fn prefix_of(label: &str) -> String {
    format!("v{}_", label.replace('.', ""))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_formatting() {
        assert_eq!(prefix_of("5.1.3"), "v513_");
        assert_eq!(prefix_of("1.3.2"), "v132_");
    }
}
