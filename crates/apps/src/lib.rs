//! Versioned guest applications and workload drivers.
//!
//! Three multithreaded servers written in MJ, each with a release stream
//! whose update-kind structure mirrors the paper's §4 benchmarks:
//!
//! * [`webserver`] — Jetty: 11 versions (5.1.0–5.1.10), update to 5.1.3
//!   unsupported (always-on-stack accept loop changed);
//! * [`emailserver`] — JavaEmailServer: 10 versions (1.2.1–1.4), update to
//!   1.3 unsupported (always-on-stack processing loops changed), 1.3.2 is
//!   the paper's Figure 2/3 update with its custom transformer;
//! * [`ftpserver`] — CrossFTP: 4 versions (1.05–1.08), 1.08 applies only
//!   when the server is idle.
//!
//! [`workload`] holds the host-side clients (the reproduction's httperf),
//! and [`harness`] the shared start/update/attempt machinery used by the
//! table benchmarks, examples and tests.

pub mod common;
pub mod emailserver;
pub mod fleet;
pub mod ftpserver;
pub mod harness;
pub mod webserver;
pub mod workload;

pub use common::{AppInstance, AppVersion, GuestApp, ProbeFailure};
pub use emailserver::Emailserver;
pub use fleet::{Fleet, RollFault, RollOptions, RollReport};
pub use ftpserver::Ftpserver;
pub use webserver::Webserver;

/// The three guest applications.
pub fn all_apps() -> Vec<Box<dyn GuestApp>> {
    vec![Box::new(Webserver), Box::new(Emailserver), Box::new(Ftpserver)]
}
