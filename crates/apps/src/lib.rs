//! Versioned guest applications and workload drivers.
//!
//! Four multithreaded servers written in MJ. The first three mirror the
//! paper's §4 benchmarks update-kind for update-kind (and are the only
//! apps [`all_apps`] reports — the summary/table harnesses stay
//! pinned to the paper's 22 updates):
//!
//! * [`webserver`] — Jetty: 11 versions (5.1.0–5.1.10), update to 5.1.3
//!   unsupported (always-on-stack accept loop changed);
//! * [`emailserver`] — JavaEmailServer: 10 versions (1.2.1–1.4), update to
//!   1.3 unsupported (always-on-stack processing loops changed), 1.3.2 is
//!   the paper's Figure 2/3 update with its custom transformer;
//! * [`ftpserver`] — CrossFTP: 4 versions (1.05–1.08), 1.08 applies only
//!   when the server is idle.
//!
//! The fourth is this reproduction's deep-release-history workload:
//!
//! * [`kvstore`] — an MJ key-value/session store with 21 generated
//!   releases whose 20-update chain walks the whole design space
//!   (body-only, signature changes, field add/remove/retype, class
//!   additions, indirect closures lifting the accept loop via OSR), all
//!   prepared automatically by `jvolve-upt` and driven by [`stream`],
//!   the release-stream harness.
//!
//! [`workload`] holds the host-side clients (the reproduction's httperf),
//! and [`harness`] the shared start/update/attempt machinery used by the
//! table benchmarks, examples and tests.

pub mod common;
pub mod emailserver;
pub mod fleet;
pub mod ftpserver;
pub mod harness;
pub mod kvstore;
pub mod stream;
pub mod webserver;
pub mod workload;

pub use common::{AppInstance, AppVersion, GuestApp, ProbeFailure};
pub use emailserver::Emailserver;
pub use fleet::{Fleet, RollFault, RollOptions, RollReport};
pub use ftpserver::Ftpserver;
pub use kvstore::Kvstore;
pub use stream::{run_release_stream, StreamOptions, StreamReport};
pub use webserver::Webserver;

/// The three guest applications.
pub fn all_apps() -> Vec<Box<dyn GuestApp>> {
    vec![Box::new(Webserver), Box::new(Emailserver), Box::new(Ftpserver)]
}
