//! The `emailserver` guest application — the reproduction's
//! JavaEmailServer (SMTP + POP).
//!
//! Ten releases, 1.2.1 through 1.4, preserving the kind structure of the
//! paper's Table 3:
//!
//! | update | classification | notes |
//! |---|---|---|
//! | 1.2.2 | method-body-only | |
//! | 1.2.3 | class update | `User`/`MailMessage` gain fields, `MailStore.deliver` signature change; OSR lifts `SMTPSender.run`/`Pop3Processor.run` |
//! | 1.2.4 | method-body-only | |
//! | 1.3   | class update, **unsupported** | configuration rework: `FileConfig` added, `GuiAdmin` deleted, every processor `run()` body changes while always on stack |
//! | 1.3.1 | method-body-only | the `loadUser` fix |
//! | 1.3.2 | class update | the paper's Figure 2/3: `EmailAddress` added, `User.forwardAddresses` changes type, custom transformer converts the strings; OSR lifts `Pop3Processor.run` |
//! | 1.3.3 | method-body-only | |
//! | 1.3.4 | class update | `Mailbox`/`MailStore` gain members |
//! | 1.4   | class update | vacation support on `User`; a method deleted |
//!
//! SMTP-ish protocol on port 2525 (`SEND <from> <to> <text>` / `QUIT`),
//! POP-ish protocol on port 1100 (`USER <name>`, then `LIST` / `FWD` /
//! `QUIT`). Delivery is asynchronous through `OutQueue`, flushed by the
//! `SMTPSender` sleeper thread.

use jvolve_vm::Vm;

use crate::common::{prefix_of, verify_replies, AppInstance, AppVersion, GuestApp, ProbeFailure};
use crate::workload::{pop_list, smtp_send};

/// SMTP port.
pub const SMTP_PORT: u16 = 2525;
/// POP port.
pub const POP_PORT: u16 = 1100;

/// The emailserver application.
#[derive(Debug, Clone, Copy, Default)]
pub struct Emailserver;

impl AppInstance for Emailserver {
    fn name(&self) -> &'static str {
        "emailserver"
    }
    fn port(&self) -> u16 {
        SMTP_PORT
    }
    fn main_class(&self) -> &'static str {
        "EmailServer"
    }
    fn probe(&self, vm: &mut Vm, seq: u64, max_slices: usize) -> Result<String, ProbeFailure> {
        // Alternate SMTP submission with a POP list so both listeners are
        // exercised under load.
        if seq.is_multiple_of(2) {
            let replies = smtp_send(vm, SMTP_PORT, "alice", "bob", "probe", max_slices);
            verify_replies(replies, &[(0, "250"), (1, "221")])
        } else {
            let replies = pop_list(vm, POP_PORT, "alice", max_slices);
            verify_replies(replies, &[(0, "+OK")])
        }
    }
    fn settle_slices(&self) -> usize {
        // SMTP/POP session handlers run on their own green threads; give
        // them time to exit after the last client closes.
        200
    }
}

impl GuestApp for Emailserver {
    fn versions(&self) -> Vec<AppVersion> {
        (0..=9)
            .map(|v| {
                let label = LABELS[v];
                AppVersion {
                    label,
                    prefix: Box::leak(prefix_of(label).into_boxed_str()),
                    source: source(v),
                }
            })
            .collect()
    }
    fn expected_failures(&self) -> Vec<&'static str> {
        vec!["1.3"]
    }
}

const LABELS: [&str; 10] =
    ["1.2.1", "1.2.2", "1.2.3", "1.2.4", "1.3", "1.3.1", "1.3.2", "1.3.3", "1.3.4", "1.4"];

/// The custom transformer the developer writes for the 1.3.2 update —
/// the paper's Figure 3, converting `String[]` forward addresses into
/// `EmailAddress[]` by splitting at `@`. This is the *per-class* unit
/// (the `jvolve_class_User`/`jvolve_object_User` method pair) in the
/// shape `jvolve_upt` takes as an override for `User`; the full
/// `JvolveTransformers` source is assembled from it by
/// [`crate::harness::custom_transformer`].
pub const FIGURE3_USER_METHODS: &str = "
  static method jvolve_class_User(): void { }
  static method jvolve_object_User(to: User, from: v132_User): void {
    to.username = from.username;
    to.domain = from.domain;
    to.password = from.password;
    to.quotaKb = from.quotaKb;
    to.cfgKey = from.cfgKey;
    if (from.forwardAddresses == null) { return; }
    var len: int = from.forwardAddresses.length;
    to.forwardAddresses = new EmailAddress[len];
    var i: int = 0;
    while (i < len) {
      var parts: String[] = Str.split(from.forwardAddresses[i], \"@\");
      to.forwardAddresses[i] = new EmailAddress(parts[0], parts[1]);
      i = i + 1;
    }
  }
";

/// Full MJ source of version index `v` (0 = 1.2.1).
pub fn source(v: usize) -> String {
    assert!(v <= 9, "emailserver has versions 0..=9");
    let mut src = String::new();
    src.push_str(&user(v));
    if v >= 6 {
        src.push_str(EMAIL_ADDRESS);
    }
    src.push_str(&mail_message(v));
    src.push_str(&mailbox(v));
    src.push_str(&mail_store(v));
    src.push_str(OUT_QUEUE);
    src.push_str(&delivery(v));
    src.push_str(&smtp_session(v));
    src.push_str(&pop3_session(v));
    src.push_str(&processors(v));
    src.push_str(&configuration_manager(v));
    if v <= 3 {
        src.push_str(GUI_ADMIN);
    }
    if v >= 4 {
        src.push_str(FILE_CONFIG);
        src.push_str(CONFIG_WATCHER);
    }
    src.push_str(&email_server_main(v));
    src
}

fn user(v: usize) -> String {
    let quota = if v >= 2 { "  field quotaKb: int;\n" } else { "" };
    let cfg = if v >= 4 { "  field cfgKey: String;\n" } else { "" };
    let vacation = if v >= 9 {
        "  field vacationMsg: String;
  field vacationOn: int;
"
    } else {
        ""
    };
    let fwd_ty = if v >= 6 { "EmailAddress" } else { "String" };
    let ctor_extra = match v {
        0..=1 => "",
        2..=3 => "    this.quotaKb = 1024;\n",
        4..=8 => "    this.quotaKb = 1024;\n    this.cfgKey = u;\n",
        _ => "    this.quotaKb = 1024;\n    this.cfgKey = u;\n    this.vacationOn = 0;\n",
    };
    let vacation_methods = if v >= 9 {
        "  method setVacation(msg: String): void { this.vacationMsg = msg; this.vacationOn = 1; }
  method vacationActive(): bool { return this.vacationOn > 0; }
"
    } else {
        ""
    };
    format!(
        "class User {{
  field username: String;
  field domain: String;
  field password: String;
{quota}{cfg}{vacation}  field forwardAddresses: {fwd_ty}[];
  ctor(u: String, d: String, p: String) {{
    this.username = u;
    this.domain = d;
    this.password = p;
{ctor_extra}  }}
  method getName(): String {{ return this.username; }}
  method matches(name: String): bool {{ return this.username == name; }}
  method isEnabled(): bool {{ return Str.len(this.username) > 0; }}
  method getForwards(): {fwd_ty}[] {{ return this.forwardAddresses; }}
  method setForwardedAddresses(f: {fwd_ty}[]): void {{ this.forwardAddresses = f; }}
{vacation_methods}}}
"
    )
}

const EMAIL_ADDRESS: &str = "class EmailAddress {
  field username: String;
  field domain: String;
  ctor(u: String, d: String) { this.username = u; this.domain = d; }
  method render(): String { return this.username + \"@\" + this.domain; }
}
";

fn mail_message(v: usize) -> String {
    let size_field = if v >= 2 { "  field sizeBytes: int;\n" } else { "" };
    let ctor_extra = if v >= 2 { "    this.sizeBytes = Str.len(b);\n" } else { "" };
    let size_method =
        if v >= 2 { "  method size(): int { return this.sizeBytes; }\n" } else { "" };
    format!(
        "class MailMessage {{
  field sender: String;
  field to: String;
  field body: String;
{size_field}  ctor(f: String, t: String, b: String) {{
    this.sender = f;
    this.to = t;
    this.body = b;
{ctor_extra}  }}
  method recipient(): String {{ return this.to; }}
{size_method}}}
"
    )
}

fn mailbox(v: usize) -> String {
    let last_delivery = if v >= 8 { "  field lastDelivery: int;\n" } else { "" };
    // newestIndex is added in 1.3.4 and deleted again in 1.4 (a method
    // deletion, as the paper's 1.4 row records).
    let newest = if v == 8 {
        "  method newestIndex(): int { return this.count - 1; }\n"
    } else {
        ""
    };
    let add_body = if v >= 8 {
        "    if (this.count < 16) {
      this.messages[this.count] = m;
      this.count = this.count + 1;
      this.lastDelivery = Sys.time();
    }"
    } else {
        "    if (this.count < 16) {
      this.messages[this.count] = m;
      this.count = this.count + 1;
    }"
    };
    format!(
        "class Mailbox {{
  field owner: String;
  field messages: MailMessage[];
  field count: int;
{last_delivery}  ctor(o: String) {{
    this.owner = o;
    this.messages = new MailMessage[16];
    this.count = 0;
  }}
  method ownerName(): String {{ return this.owner; }}
  method size(): int {{ return this.count; }}
  method add(m: MailMessage): void {{
{add_body}
  }}
{newest}}}
"
    )
}

fn mail_store(v: usize) -> String {
    let deliver = match v {
        0..=1 => {
            "  static method deliver(m: MailMessage): bool {
    var box: Mailbox = MailStore.findBox(m.recipient());
    if (box == null) { return false; }
    box.add(m);
    return true;
  }"
        }
        _ => {
            "  static method deliver(m: MailMessage, priority: int): bool {
    var box: Mailbox = MailStore.findBox(m.recipient());
    if (box == null) { return false; }
    box.add(m);
    return true;
  }"
        }
    };
    let find_user = match v {
        0..=2 => {
            "  static method findUser(name: String): User {
    var i: int = 0;
    while (i < MailStore.nusers) {
      if (MailStore.users[i].matches(name)) { return MailStore.users[i]; }
      i = i + 1;
    }
    return null;
  }"
        }
        _ => {
            "  static method findUser(name: String): User {
    var key: String = Str.trim(name);
    var i: int = 0;
    while (i < MailStore.nusers) {
      if (MailStore.users[i].matches(key)) { return MailStore.users[i]; }
      i = i + 1;
    }
    return null;
  }"
        }
    };
    let box_count_all = if v >= 8 {
        "  static method boxCountAll(): int {
    var total: int = 0;
    var i: int = 0;
    while (i < MailStore.nusers) {
      total = total + MailStore.boxes[i].size();
      i = i + 1;
    }
    return total;
  }
"
    } else {
        ""
    };
    format!(
        "class MailStore {{
  static field users: User[];
  static field boxes: Mailbox[];
  static field nusers: int;
  static method init(): void {{
    MailStore.users = new User[8];
    MailStore.boxes = new Mailbox[8];
    MailStore.nusers = 0;
  }}
  static method addUser(u: User): void {{
    MailStore.users[MailStore.nusers] = u;
    MailStore.boxes[MailStore.nusers] = new Mailbox(u.getName());
    MailStore.nusers = MailStore.nusers + 1;
  }}
{find_user}
  static method findBox(owner: String): Mailbox {{
    var i: int = 0;
    while (i < MailStore.nusers) {{
      if (MailStore.boxes[i].ownerName() == owner) {{ return MailStore.boxes[i]; }}
      i = i + 1;
    }}
    return null;
  }}
{deliver}
{box_count_all}}}
"
    )
}

/// Stable forever: the delivery queue the always-running sender thread
/// depends on.
const OUT_QUEUE: &str = "class OutQueue {
  static field items: MailMessage[];
  static field head: int;
  static field tail: int;
  static field size: int;
  static field cap: int;
  static method init(c: int): void {
    OutQueue.items = new MailMessage[c];
    OutQueue.cap = c;
    OutQueue.head = 0;
    OutQueue.tail = 0;
    OutQueue.size = 0;
  }
  static method push(m: MailMessage): bool {
    if (OutQueue.size >= OutQueue.cap) { return false; }
    OutQueue.items[OutQueue.tail] = m;
    OutQueue.tail = (OutQueue.tail + 1) % OutQueue.cap;
    OutQueue.size = OutQueue.size + 1;
    return true;
  }
  static method pop(): MailMessage {
    if (OutQueue.size == 0) { return null; }
    var m: MailMessage = OutQueue.items[OutQueue.head];
    OutQueue.items[OutQueue.head] = null;
    OutQueue.head = (OutQueue.head + 1) % OutQueue.cap;
    OutQueue.size = OutQueue.size - 1;
    return m;
  }
}
";

fn delivery(v: usize) -> String {
    let body = match v {
        0..=1 => "    return MailStore.deliver(m);",
        2..=6 => "    return MailStore.deliver(m, 0);",
        _ => {
            "    if (m == null) { return false; }
    return MailStore.deliver(m, 0);"
        }
    };
    format!(
        "class Delivery {{
  static method deliver(m: MailMessage): bool {{
{body}
  }}
}}
"
    )
}

fn smtp_session(v: usize) -> String {
    let body = match v {
        0 => {
            "    while (true) {
      var line: String = Net.readLine(conn);
      if (line == null) { Net.close(conn); return; }
      var parts: String[] = Str.split(line, \" \");
      if (parts[0] == \"QUIT\") { Net.write(conn, \"221 bye\"); Net.close(conn); return; }
      if (parts[0] == \"SEND\" && parts.length >= 4) {
        var m: MailMessage = new MailMessage(parts[1], parts[2], parts[3]);
        var ok: bool = OutQueue.push(m);
        if (ok) { Net.write(conn, \"250 ok\"); } else { Net.write(conn, \"451 busy\"); }
      } else {
        Net.write(conn, \"500 bad\");
      }
    }"
        }
        1..=2 => {
            "    while (true) {
      var line: String = Net.readLine(conn);
      if (line == null) { Net.close(conn); return; }
      var parts: String[] = Str.split(Str.trim(line), \" \");
      if (parts[0] == \"QUIT\") { Net.write(conn, \"221 bye\"); Net.close(conn); return; }
      if (parts[0] == \"SEND\" && parts.length >= 4) {
        var m: MailMessage = new MailMessage(parts[1], parts[2], parts[3]);
        var ok: bool = OutQueue.push(m);
        if (ok) { Net.write(conn, \"250 ok\"); } else { Net.write(conn, \"451 busy\"); }
      } else {
        Net.write(conn, \"500 bad\");
      }
    }"
        }
        3 => {
            "    while (true) {
      var line: String = Net.readLine(conn);
      if (line == null) { Net.close(conn); return; }
      var parts: String[] = Str.split(Str.trim(line), \" \");
      if (parts[0] == \"QUIT\" || parts[0] == \"quit\") {
        Net.write(conn, \"221 bye\");
        Net.close(conn);
        return;
      }
      if (parts[0] == \"SEND\" && parts.length >= 4) {
        var m: MailMessage = new MailMessage(parts[1], parts[2], parts[3]);
        var ok: bool = OutQueue.push(m);
        if (ok) { Net.write(conn, \"250 ok\"); } else { Net.write(conn, \"451 busy\"); }
      } else {
        Net.write(conn, \"500 bad\");
      }
    }"
        }
        4 => {
            "    while (true) {
      var line: String = Net.readLine(conn);
      if (line == null) { Net.close(conn); return; }
      if (Str.len(line) > FileConfig.maxLine) { Net.write(conn, \"500 too long\"); }
      var parts: String[] = Str.split(Str.trim(line), \" \");
      if (parts[0] == \"QUIT\" || parts[0] == \"quit\") {
        Net.write(conn, \"221 bye\");
        Net.close(conn);
        return;
      }
      if (parts[0] == \"SEND\" && parts.length >= 4) {
        var m: MailMessage = new MailMessage(parts[1], parts[2], parts[3]);
        var ok: bool = OutQueue.push(m);
        if (ok) { Net.write(conn, \"250 ok\"); } else { Net.write(conn, \"451 busy\"); }
      } else {
        Net.write(conn, \"500 bad\");
      }
    }"
        }
        5..=6 => {
            "    while (true) {
      var line: String = Net.readLine(conn);
      if (line == null) { Net.close(conn); return; }
      if (Str.len(line) > FileConfig.maxLine) { Net.write(conn, \"500 too long\"); }
      var parts: String[] = Str.split(Str.trim(line), \" \");
      if (parts[0] == \"QUIT\" || parts[0] == \"quit\") {
        Net.write(conn, \"221 closing\");
        Net.close(conn);
        return;
      }
      if (parts[0] == \"SEND\" && parts.length >= 4) {
        var m: MailMessage = new MailMessage(parts[1], parts[2], parts[3]);
        var ok: bool = OutQueue.push(m);
        if (ok) { Net.write(conn, \"250 ok\"); } else { Net.write(conn, \"451 busy\"); }
      } else {
        Net.write(conn, \"500 bad\");
      }
    }"
        }
        _ => {
            "    while (true) {
      var line: String = Net.readLine(conn);
      if (line == null) { Net.close(conn); return; }
      if (Str.len(line) > FileConfig.maxLine) { Net.write(conn, \"500 too long\"); }
      var parts: String[] = Str.split(Str.trim(line), \" \");
      if (parts.length == 0) { Net.write(conn, \"500 bad\"); } else {
        if (parts[0] == \"QUIT\" || parts[0] == \"quit\") {
          Net.write(conn, \"221 closing\");
          Net.close(conn);
          return;
        }
        if (parts[0] == \"SEND\" && parts.length >= 4) {
          var m: MailMessage = new MailMessage(parts[1], parts[2], parts[3]);
          var ok: bool = OutQueue.push(m);
          if (ok) { Net.write(conn, \"250 ok\"); } else { Net.write(conn, \"451 busy\"); }
        } else {
          Net.write(conn, \"500 bad\");
        }
      }
    }"
        }
    };
    format!(
        "class SmtpSession {{
  static method handle(conn: int): void {{
{body}
  }}
}}
"
    )
}

fn pop3_session(v: usize) -> String {
    let fwd_branch = match v {
        0..=5 => {
            "      if (parts[0] == \"FWD\") {
        var f: String[] = u.getForwards();
        if (f == null || f.length == 0) { Net.write(conn, \"+OK none\"); }
        else { Net.write(conn, \"+OK \" + f[0]); }
      } else {
        Net.write(conn, \"-ERR bad\");
      }"
        }
        _ => {
            "      if (parts[0] == \"FWD\") {
        var f: EmailAddress[] = u.getForwards();
        if (f == null || f.length == 0) { Net.write(conn, \"+OK none\"); }
        else { Net.write(conn, \"+OK \" + f[0].render()); }
      } else {
        Net.write(conn, \"-ERR bad\");
      }"
        }
    };
    let list_branch = match v {
        0 => {
            "      if (parts[0] == \"LIST\") {
        var box: Mailbox = MailStore.findBox(u.getName());
        if (box == null) { Net.write(conn, \"-ERR nobox\"); }
        else { Net.write(conn, \"+OK \" + Str.fromInt(box.size())); }
      } else"
        }
        1..=6 => {
            "      if (parts[0] == \"LIST\" || parts[0] == \"STAT\") {
        var box: Mailbox = MailStore.findBox(u.getName());
        if (box == null) { Net.write(conn, \"-ERR nobox\"); }
        else { Net.write(conn, \"+OK \" + Str.fromInt(box.size())); }
      } else"
        }
        _ => {
            "      if (parts[0] == \"LIST\" || parts[0] == \"STAT\") {
        var box: Mailbox = MailStore.findBox(u.getName());
        if (box == null) { Net.write(conn, \"-ERR nobox\"); }
        else { Net.write(conn, \"+OK \" + u.getName() + \" \" + Str.fromInt(box.size())); }
      } else"
        }
    };
    let vac_branch = if v >= 9 {
        "      if (parts[0] == \"VAC\") {
        if (u.vacationActive()) { Net.write(conn, \"+OK away\"); }
        else { Net.write(conn, \"+OK here\"); }
      } else"
    } else {
        ""
    };
    format!(
        "class Pop3Session {{
  static method auth(conn: int): User {{
    var line: String = Net.readLine(conn);
    if (line == null) {{ return null; }}
    var parts: String[] = Str.split(Str.trim(line), \" \");
    if (parts.length >= 2 && parts[0] == \"USER\") {{
      var u: User = MailStore.findUser(parts[1]);
      if (u != null) {{ Net.write(conn, \"+OK\"); return u; }}
    }}
    Net.write(conn, \"-ERR\");
    return null;
  }}
  static method serve(conn: int, u: User): void {{
    while (true) {{
      var line: String = Net.readLine(conn);
      if (line == null) {{ Net.close(conn); return; }}
      var parts: String[] = Str.split(Str.trim(line), \" \");
      if (parts[0] == \"QUIT\") {{ Net.write(conn, \"+OK bye\"); Net.close(conn); return; }}
{vac_branch}
{list_branch}
{fwd_branch}
    }}
  }}
}}
"
    )
}

fn processors(v: usize) -> String {
    let reload_check = if v >= 4 {
        "      if (FileConfig.reloadFlag > 0) {
        FileConfig.reloadFlag = 0;
        ConfigurationManager.load();
      }
"
    } else {
        ""
    };
    format!(
        "class SMTPProcessor {{
  field port: int;
  ctor(p: int) {{ this.port = p; }}
  method run(): void {{
    var l: int = Net.listen(this.port);
    while (true) {{
{reload_check}      var c: int = Net.accept(l);
      SmtpSession.handle(c);
    }}
  }}
}}
class Pop3Processor {{
  field port: int;
  ctor(p: int) {{ this.port = p; }}
  method run(): void {{
    var l: int = Net.listen(this.port);
    while (true) {{
{reload_check}      var c: int = Net.accept(l);
      var u: User = Pop3Session.auth(c);
      if (u != null) {{
        if (u.isEnabled()) {{ Pop3Session.serve(c, u); }} else {{ Net.close(c); }}
      }} else {{
        Net.close(c);
      }}
    }}
  }}
}}
class SMTPSender {{
  ctor() {{ }}
  method run(): void {{
    while (true) {{
{reload_check}      Sys.sleep(20);
      var m: MailMessage = OutQueue.pop();
      if (m != null) {{
        if (m.recipient() != null) {{ Delivery.deliver(m); }}
      }}
    }}
  }}
}}
"
    )
}

fn configuration_manager(v: usize) -> String {
    let body = match v {
        0 => {
            "    MailStore.init();
    var alice: User = new User(\"alice\", \"example.com\", \"secret\");
    var fwd: String[] = new String[1];
    fwd[0] = \"carol@ext.example.org\";
    alice.setForwardedAddresses(fwd);
    MailStore.addUser(alice);
    var bob: User = new User(\"bob\", \"example.com\", \"hunter2\");
    MailStore.addUser(bob);"
        }
        1..=3 => {
            "    MailStore.init();
    var alice: User = new User(\"alice\", \"example.com\", \"secret\");
    var fwd: String[] = new String[1];
    fwd[0] = \"carol@ext.example.org\";
    alice.setForwardedAddresses(fwd);
    MailStore.addUser(alice);
    var bob: User = new User(\"bob\", \"example.com\", \"hunter2\");
    MailStore.addUser(bob);
    var carol: User = new User(\"carol\", \"example.com\", \"pass3\");
    MailStore.addUser(carol);"
        }
        4 => {
            "    FileConfig.load();
    MailStore.init();
    var alice: User = new User(\"alice\", \"example.com\", \"secret\");
    var fwd: String[] = new String[1];
    fwd[0] = \"carol@ext.example.org\";
    alice.setForwardedAddresses(fwd);
    MailStore.addUser(alice);
    var bob: User = new User(\"bob\", \"example.com\", \"hunter2\");
    MailStore.addUser(bob);
    var carol: User = new User(\"carol\", \"example.com\", \"pass3\");
    MailStore.addUser(carol);"
        }
        5 => {
            "    FileConfig.load();
    MailStore.init();
    var alice: User = new User(\"alice\", \"example.com\", \"secret\");
    var fwd: String[] = new String[2];
    fwd[0] = \"carol@ext.example.org\";
    fwd[1] = \"dave@ext.example.org\";
    alice.setForwardedAddresses(fwd);
    MailStore.addUser(alice);
    var bob: User = new User(\"bob\", \"example.com\", \"hunter2\");
    MailStore.addUser(bob);
    var carol: User = new User(\"carol\", \"example.com\", \"pass3\");
    MailStore.addUser(carol);"
        }
        6..=8 => {
            "    FileConfig.load();
    MailStore.init();
    var alice: User = new User(\"alice\", \"example.com\", \"secret\");
    var fwd: EmailAddress[] = new EmailAddress[2];
    fwd[0] = new EmailAddress(\"carol\", \"ext.example.org\");
    fwd[1] = new EmailAddress(\"dave\", \"ext.example.org\");
    alice.setForwardedAddresses(fwd);
    MailStore.addUser(alice);
    var bob: User = new User(\"bob\", \"example.com\", \"hunter2\");
    MailStore.addUser(bob);
    var carol: User = new User(\"carol\", \"example.com\", \"pass3\");
    MailStore.addUser(carol);"
        }
        _ => {
            "    FileConfig.load();
    MailStore.init();
    var alice: User = new User(\"alice\", \"example.com\", \"secret\");
    var fwd: EmailAddress[] = new EmailAddress[2];
    fwd[0] = new EmailAddress(\"carol\", \"ext.example.org\");
    fwd[1] = new EmailAddress(\"dave\", \"ext.example.org\");
    alice.setForwardedAddresses(fwd);
    alice.setVacation(\"on leave\");
    MailStore.addUser(alice);
    var bob: User = new User(\"bob\", \"example.com\", \"hunter2\");
    MailStore.addUser(bob);
    var carol: User = new User(\"carol\", \"example.com\", \"pass3\");
    MailStore.addUser(carol);"
        }
    };
    format!(
        "class ConfigurationManager {{
  static method load(): void {{
{body}
  }}
}}
"
    )
}

const GUI_ADMIN: &str = "class GuiAdmin {
  static method banner(): String { return \"admin console\"; }
}
";

const FILE_CONFIG: &str = "class FileConfig {
  static field maxLine: int;
  static field reloadFlag: int;
  static method load(): void {
    FileConfig.maxLine = 1024;
    FileConfig.reloadFlag = 0;
  }
}
";

const CONFIG_WATCHER: &str = "class ConfigWatcher {
  static method requestReload(): void { FileConfig.reloadFlag = 1; }
}
";

fn email_server_main(v: usize) -> String {
    let body = if v >= 4 {
        "    FileConfig.load();
    ConfigurationManager.load();
    OutQueue.init(32);
    Sys.spawn(new SMTPProcessor(2525));
    Sys.spawn(new Pop3Processor(1100));
    Sys.spawn(new SMTPSender());"
    } else {
        "    ConfigurationManager.load();
    OutQueue.init(32);
    Sys.spawn(new SMTPProcessor(2525));
    Sys.spawn(new Pop3Processor(1100));
    Sys.spawn(new SMTPSender());"
    };
    format!(
        "class EmailServer {{
  static method main(): void {{
{body}
  }}
}}
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::GuestApp;

    #[test]
    fn every_version_compiles() {
        for v in Emailserver.versions() {
            v.compile();
        }
    }

    #[test]
    fn consecutive_versions_differ() {
        let versions = Emailserver.versions();
        for w in versions.windows(2) {
            assert_ne!(w[0].source, w[1].source, "{} vs {}", w[0].label, w[1].label);
        }
    }

    #[test]
    fn figure3_transformer_names_the_renamed_class() {
        assert!(FIGURE3_USER_METHODS.contains("v132_User"));
        assert_eq!(prefix_of("1.3.2"), "v132_");
    }
}
