//! The `kvstore` guest application — a key-value/session store with a
//! 20-update release stream, built for the UPT and release-stream
//! harnesses (`jvolve-upt`, `release_stream`, `streambench`).
//!
//! Twenty-one releases, 1.0 through 1.20. Unlike the paper's three apps
//! (whose streams mirror Tables 2–4), this chain is designed so **every
//! update applies**: it covers each change kind the UPT classifies, and
//! the data plane (`Store.keys`/`Store.vals`/`Store.count`) keeps its
//! names and types through all 21 versions so generated default
//! transformers preserve the store's contents end-to-end.
//!
//! | update | classification | notes |
//! |---|---|---|
//! | 1.1  | method-body-only | `Handler.handle` trims input |
//! | 1.2  | class update | `KvStats` gains `dels`/`bumpDel`; `Admin.stats` becomes **indirect** (unchanged, references `KvStats`) |
//! | 1.3  | method-body-only | `Store.find` null guard |
//! | 1.4  | class update | `Resp.val` signature change |
//! | 1.5  | class update | `Store` gains `ops: int`; OSR lifts `main` (indirect) |
//! | 1.6  | class update | `Session` class **added** |
//! | 1.7  | method-body-only | token scheme + `Resp.err` guard |
//! | 1.8  | class update | `Store.ops` **retyped** `int` → `String` |
//! | 1.9  | class update | `KvStats.report` signature change |
//! | 1.10 | method-body-only | `KvStats.bumpGet` overflow guard |
//! | 1.11 | class update | `Session` gains `created` field (live object transformed) |
//! | 1.12 | class update | `Store.ops` field **removed** |
//! | 1.13 | class update | `Expiry` class **added** |
//! | 1.14 | method-body-only | `Expiry.sweep` guard |
//! | 1.15 | class update | `Session.open` signature change |
//! | 1.16 | class update | `KvStats` gains `expiries`; `Admin.stats` **indirect** again |
//! | 1.17 | class update | `AuthGuard` **added**, `Handler` gains a field; OSR lifts the always-on-stack `KvServer.serve` (indirect) |
//! | 1.18 | method-body-only | `AuthGuard.check` trims tokens |
//! | 1.19 | class update | `Expiry` gains `sweeps`; `Handler.handle` indirect |
//! | 1.20 | method-body-only | `Handler.handle` empty-line guard |
//!
//! The server accepts single-line requests on port 8090 — `SET k v`,
//! `GET k`, `DEL k`, `SESS`, `STATS`, `AUTH tok`, `PING` — and answers
//! one line per connection (`OK …`, `VAL …`, `NIL`, `ERR …`) from a
//! single always-running accept loop.

use jvolve_vm::Vm;

use crate::common::{prefix_of, verify_replies, AppInstance, AppVersion, GuestApp, ProbeFailure};
use crate::workload::one_shot;

/// Port the kvstore listens on.
pub const PORT: u16 = 8090;

/// Number of releases (1.0 through 1.20).
pub const VERSIONS: usize = 21;

/// The kvstore application.
#[derive(Debug, Clone, Copy, Default)]
pub struct Kvstore;

impl AppInstance for Kvstore {
    fn name(&self) -> &'static str {
        "kvstore"
    }
    fn port(&self) -> u16 {
        PORT
    }
    fn main_class(&self) -> &'static str {
        "KvServer"
    }
    fn probe(&self, vm: &mut Vm, seq: u64, max_slices: usize) -> Result<String, ProbeFailure> {
        // Write, then read back and require the exact value: a probe is
        // only correct if the store round-trips data, not just answers.
        let key = format!("k{}", seq % 8);
        let val = format!("v{seq}");
        let set = one_shot(vm, PORT, &format!("SET {key} {val}"), max_slices).map(|(r, _)| vec![r]);
        verify_replies(set, &[(0, "OK")])?;
        if seq % 5 == 4 {
            // Commands present since 1.0 only — probes are version-blind.
            let stats = one_shot(vm, PORT, "STATS", max_slices).map(|(r, _)| vec![r]);
            verify_replies(stats, &[(0, "OK sets=")])?;
        }
        let expect = format!("VAL {val}");
        let got = one_shot(vm, PORT, &format!("GET {key}"), max_slices).map(|(r, _)| vec![r]);
        verify_replies(got, &[(0, expect.as_str())])
    }
}

impl GuestApp for Kvstore {
    fn versions(&self) -> Vec<AppVersion> {
        (0..VERSIONS)
            .map(|v| {
                let label = LABELS[v];
                AppVersion {
                    label,
                    prefix: Box::leak(prefix_of(label).into_boxed_str()),
                    source: source(v),
                }
            })
            .collect()
    }
    fn expected_failures(&self) -> Vec<&'static str> {
        vec![]
    }
}

const LABELS: [&str; VERSIONS] = [
    "1.0", "1.1", "1.2", "1.3", "1.4", "1.5", "1.6", "1.7", "1.8", "1.9", "1.10", "1.11", "1.12",
    "1.13", "1.14", "1.15", "1.16", "1.17", "1.18", "1.19", "1.20",
];

/// Full MJ source of version index `v` (0 = 1.0).
pub fn source(v: usize) -> String {
    assert!(v < VERSIONS, "kvstore has versions 0..{VERSIONS}");
    let mut src = String::new();
    src.push_str(&resp(v));
    src.push_str(&kv_stats(v));
    src.push_str(&store(v));
    src.push_str(&admin(v));
    if v >= 6 {
        src.push_str(&session(v));
    }
    if v >= 13 {
        src.push_str(&expiry(v));
    }
    if v >= 17 {
        src.push_str(&auth_guard(v));
    }
    src.push_str(&handler(v));
    src.push_str(KV_SERVER);
    src
}

fn resp(v: usize) -> String {
    let val_params = if v >= 4 { "v: String, found: bool" } else { "v: String" };
    let err_body = if v >= 7 {
        "    if (msg == null) { return \"ERR\"; }
    return \"ERR \" + msg;"
    } else {
        "    return \"ERR \" + msg;"
    };
    format!(
        "class Resp {{
  static method ok(msg: String): String {{ return \"OK \" + msg; }}
  static method val({val_params}): String {{ return \"VAL \" + v; }}
  static method nil(): String {{ return \"NIL\"; }}
  static method err(msg: String): String {{
{err_body}
  }}
}}
"
    )
}

fn kv_stats(v: usize) -> String {
    let dels_field = if v >= 2 { "  static field dels: int;\n" } else { "" };
    let expiries_field = if v >= 16 { "  static field expiries: int;\n" } else { "" };
    let bump_get_body = if v >= 10 {
        "    if (KvStats.gets < 1000000000) { KvStats.gets = KvStats.gets + 1; }"
    } else {
        "    KvStats.gets = KvStats.gets + 1;"
    };
    let bump_del = if v >= 2 {
        "  static method bumpDel(): void { KvStats.dels = KvStats.dels + 1; }\n"
    } else {
        ""
    };
    let bump_expiry = if v >= 16 {
        "  static method bumpExpiry(): void { KvStats.expiries = KvStats.expiries + 1; }\n"
    } else {
        ""
    };
    let report_params = if v >= 9 { "verbose: bool" } else { "" };
    let base = match v {
        0..=1 => "\"sets=\" + Str.fromInt(KvStats.sets) + \" gets=\" + Str.fromInt(KvStats.gets)",
        2..=15 => {
            "\"sets=\" + Str.fromInt(KvStats.sets) + \" gets=\" + Str.fromInt(KvStats.gets) + \" dels=\" + Str.fromInt(KvStats.dels)"
        }
        _ => {
            "\"sets=\" + Str.fromInt(KvStats.sets) + \" gets=\" + Str.fromInt(KvStats.gets) + \" dels=\" + Str.fromInt(KvStats.dels) + \" expiries=\" + Str.fromInt(KvStats.expiries)"
        }
    };
    let report_body = if v >= 9 {
        format!(
            "    var base: String = {base};
    if (verbose) {{ return base + \" verbose\"; }}
    return base;"
        )
    } else {
        format!("    return {base};")
    };
    format!(
        "class KvStats {{
  static field sets: int;
  static field gets: int;
{dels_field}{expiries_field}  static method bumpSet(): void {{ KvStats.sets = KvStats.sets + 1; }}
  static method bumpGet(): void {{
{bump_get_body}
  }}
{bump_del}{bump_expiry}  static method report({report_params}): String {{
{report_body}
  }}
}}
"
    )
}

fn store(v: usize) -> String {
    // The data plane: keys/vals/count keep their names and types through
    // every release, so generated default transformers carry the store's
    // contents across all 20 updates. `ops` is the aux field the chain
    // adds (1.5), retypes (1.8), and removes (1.12).
    let ops_field = match v {
        5..=7 => "  static field ops: int;\n",
        8..=11 => "  static field ops: String;\n",
        _ => "",
    };
    let set_extra = match v {
        5..=7 => "    Store.ops = Store.ops + 1;\n",
        8..=11 => "    Store.ops = \"set\";\n",
        _ => "",
    };
    let find_guard = if v >= 3 { "    if (k == null) { return 0 - 1; }\n" } else { "" };
    let del_bump = if v >= 2 { "    KvStats.bumpDel();\n" } else { "" };
    format!(
        "class Store {{
  static field keys: String[];
  static field vals: String[];
  static field count: int;
{ops_field}  static method init(cap: int): void {{
    Store.keys = new String[cap];
    Store.vals = new String[cap];
    Store.count = 0;
  }}
  static method find(k: String): int {{
{find_guard}    var i: int = 0;
    while (i < Store.count) {{
      if (Store.keys[i] == k) {{ return i; }}
      i = i + 1;
    }}
    return 0 - 1;
  }}
  static method get(k: String): String {{
    KvStats.bumpGet();
    var i: int = Store.find(k);
    if (i < 0) {{ return null; }}
    return Store.vals[i];
  }}
  static method set(k: String, v: String): void {{
{set_extra}    var i: int = Store.find(k);
    if (i >= 0) {{ Store.vals[i] = v; KvStats.bumpSet(); return; }}
    if (Store.count < Store.keys.length) {{
      Store.keys[Store.count] = k;
      Store.vals[Store.count] = v;
      Store.count = Store.count + 1;
    }}
    KvStats.bumpSet();
  }}
  static method del(k: String): bool {{
    var i: int = Store.find(k);
    if (i < 0) {{ return false; }}
    var last: int = Store.count - 1;
    Store.keys[i] = Store.keys[last];
    Store.vals[i] = Store.vals[last];
    Store.keys[last] = null;
    Store.vals[last] = null;
    Store.count = last;
{del_bump}    return true;
  }}
}}
"
    )
}

fn admin(v: usize) -> String {
    // Admin's bytecode changes only at 1.9 (report's new signature); at
    // 1.2 and 1.16 it is untouched while `KvStats` class-updates — the
    // pure indirect-closure case the UPT must find.
    let report_call = if v >= 9 { "KvStats.report(false)" } else { "KvStats.report()" };
    format!(
        "class Admin {{
  static method stats(): String {{
    return Resp.ok({report_call});
  }}
}}
"
    )
}

fn session(v: usize) -> String {
    let created_field = if v >= 11 { "  field created: int;\n" } else { "" };
    let ctor_extra = if v >= 11 { "    this.created = Session.opened;\n" } else { "" };
    let open_params = if v >= 15 { "owner: String" } else { "" };
    let open_body = match v {
        6 => {
            "    Session.opened = Session.opened + 1;
    var s: Session = new Session(\"t\" + Str.fromInt(Session.opened));
    Session.current = s;
    return s;"
        }
        7..=14 => {
            "    Session.opened = Session.opened + 1;
    var s: Session = new Session(\"s\" + Str.fromInt(Session.opened));
    Session.current = s;
    return s;"
        }
        _ => {
            "    Session.opened = Session.opened + 1;
    var s: Session = new Session(owner + Str.fromInt(Session.opened));
    Session.current = s;
    return s;"
        }
    };
    format!(
        "class Session {{
  static field current: Session;
  static field opened: int;
  field token: String;
{created_field}  ctor(token: String) {{
    this.token = token;
{ctor_extra}  }}
  static method open({open_params}): Session {{
{open_body}
  }}
}}
"
    )
}

fn expiry(v: usize) -> String {
    let sweeps_field = if v >= 19 { "  static field sweeps: int;\n" } else { "" };
    let mut body = String::new();
    if v >= 14 {
        body.push_str("    if (Expiry.ticks < 1000000000) { Expiry.ticks = Expiry.ticks + 1; }\n");
    } else {
        body.push_str("    Expiry.ticks = Expiry.ticks + 1;\n");
    }
    if v >= 16 {
        body.push_str("    KvStats.bumpExpiry();\n");
    }
    if v >= 19 {
        body.push_str("    Expiry.sweeps = Expiry.sweeps + 1;\n");
    }
    format!(
        "class Expiry {{
  static field ticks: int;
{sweeps_field}  static method sweep(): void {{
{body}  }}
}}
"
    )
}

fn auth_guard(v: usize) -> String {
    let check_body = if v >= 18 {
        "    if (tok == null) { return false; }
    return Str.len(Str.trim(tok)) > 0;"
    } else {
        "    return Str.len(tok) > 0;"
    };
    format!(
        "class AuthGuard {{
  static method check(tok: String): bool {{
{check_body}
  }}
}}
"
    )
}

fn handler(v: usize) -> String {
    let auths_field = if v >= 17 { "  static field auths: int;\n" } else { "" };
    let mut body = String::new();
    body.push_str("    if (line == null) { return Resp.err(\"empty\"); }\n");
    if v >= 20 {
        body.push_str("    if (Str.len(line) == 0) { return Resp.err(\"empty\"); }\n");
    }
    if v >= 1 {
        body.push_str("    var parts: String[] = Str.split(Str.trim(line), \" \");\n");
    } else {
        body.push_str("    var parts: String[] = Str.split(line, \" \");\n");
    }
    body.push_str(
        "    if (parts.length < 1) { return Resp.err(\"empty\"); }
    var cmd: String = parts[0];\n",
    );
    if v >= 13 {
        body.push_str("    Expiry.sweep();\n");
    }
    body.push_str(
        "    if (cmd == \"PING\") { return Resp.ok(\"pong\"); }
    if (cmd == \"SET\") {
      if (parts.length < 3) { return Resp.err(\"args\"); }
      Store.set(parts[1], parts[2]);
      return Resp.ok(\"stored\");
    }
    if (cmd == \"GET\") {
      if (parts.length < 2) { return Resp.err(\"args\"); }
      var v: String = Store.get(parts[1]);
      if (v == null) { return Resp.nil(); }\n",
    );
    if v >= 4 {
        body.push_str("      return Resp.val(v, true);\n");
    } else {
        body.push_str("      return Resp.val(v);\n");
    }
    body.push_str(
        "    }
    if (cmd == \"DEL\") {
      if (parts.length < 2) { return Resp.err(\"args\"); }
      var had: bool = Store.del(parts[1]);
      if (had) { return Resp.ok(\"deleted\"); }
      return Resp.nil();
    }
    if (cmd == \"STATS\") { return Admin.stats(); }\n",
    );
    if v >= 6 {
        if v >= 15 {
            body.push_str(
                "    if (cmd == \"SESS\") {
      var s: Session = Session.open(\"cli\");
      return Resp.ok(s.token);
    }\n",
            );
        } else {
            body.push_str(
                "    if (cmd == \"SESS\") {
      var s: Session = Session.open();
      return Resp.ok(s.token);
    }\n",
            );
        }
    }
    if v >= 17 {
        body.push_str(
            "    if (cmd == \"AUTH\") {
      if (parts.length < 2) { return Resp.err(\"args\"); }
      if (AuthGuard.check(parts[1])) {
        Handler.auths = Handler.auths + 1;
        return Resp.ok(\"auth\");
      }
      return Resp.err(\"denied\");
    }\n",
        );
    }
    body.push_str("    return Resp.err(\"unknown\");");
    format!(
        "class Handler {{
{auths_field}  static method handle(line: String): String {{
{body}
  }}
}}
"
    )
}

// The serving spine never changes: `serve` sits on the stack through all
// 20 updates, `main` below it. Both become *indirect* when classes they
// reference update (`Store` at 1.5/1.8/1.12 for `main`, `Handler` at
// 1.17 for `serve`) and are lifted by OSR rather than blocking.
const KV_SERVER: &str = "class KvServer {
  static method serve(listener: int): void {
    while (true) {
      var conn: int = Net.accept(listener);
      var line: String = Net.readLine(conn);
      if (line == null) { Net.close(conn); continue; }
      var resp: String = Handler.handle(line);
      Net.write(conn, resp);
      Net.close(conn);
    }
  }
  static method main(): void {
    Store.init(64);
    var l: int = Net.listen(8090);
    KvServer.serve(l);
  }
}
";

/// Name of the committed example file for version index `v`
/// (`kvstore_v01.mj` … `kvstore_v21.mj`).
pub fn example_file_name(v: usize) -> String {
    format!("kvstore_v{:02}.mj", v + 1)
}

/// Contents of the committed example file for version index `v`: the
/// generated source under a provenance header. `kvstore_gen` writes
/// these; a test keeps the checked-in files in sync.
pub fn example_file_content(v: usize) -> String {
    format!(
        "// kvstore {} — generated by `cargo run -p jvolve-apps --bin kvstore_gen`; do not edit.\n{}",
        LABELS[v],
        source(v)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_version_compiles() {
        for version in Kvstore.versions() {
            version.compile();
        }
    }

    #[test]
    fn consecutive_versions_differ() {
        for v in 0..VERSIONS - 1 {
            assert_ne!(source(v), source(v + 1), "1.{v} and 1.{} must differ", v + 1);
        }
    }

    #[test]
    fn labels_and_prefixes() {
        let versions = Kvstore.versions();
        assert_eq!(versions.len(), VERSIONS);
        assert_eq!(versions[0].label, "1.0");
        assert_eq!(versions[0].prefix, "v10_");
        assert_eq!(versions[20].label, "1.20");
        assert_eq!(versions[20].prefix, "v120_");
    }

    #[test]
    fn committed_examples_are_in_sync() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/mj");
        for v in 0..VERSIONS {
            let path = dir.join(example_file_name(v));
            let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!("{}: {e} — run `cargo run -p jvolve-apps --bin kvstore_gen`", path.display())
            });
            assert_eq!(
                committed,
                example_file_content(v),
                "{} is stale — run `cargo run -p jvolve-apps --bin kvstore_gen`",
                path.display()
            );
        }
    }

    #[test]
    fn chain_classification_matches_the_design_table() {
        use jvolve::diff::prepare_spec;
        use jvolve_classfile::ClassSet;

        let versions = Kvstore.versions();
        let body_only = [1, 3, 7, 10, 14, 18, 20];
        for to in 1..VERSIONS {
            let old: ClassSet = versions[to - 1].compile().into_iter().collect();
            let new: ClassSet = versions[to].compile().into_iter().collect();
            let spec = prepare_spec(&old, &new, versions[to].prefix);
            assert_eq!(
                spec.is_body_only(),
                body_only.contains(&to),
                "1.{to}: body-only classification"
            );
            let indirect: Vec<String> =
                spec.indirect_methods.iter().map(ToString::to_string).collect();
            match to {
                2 | 16 => assert!(
                    indirect.iter().any(|m| m == "Admin.stats"),
                    "1.{to}: Admin.stats must be indirect: {indirect:?}"
                ),
                5 | 8 | 12 => assert!(
                    indirect.iter().any(|m| m == "KvServer.main"),
                    "1.{to}: KvServer.main must be indirect: {indirect:?}"
                ),
                17 => assert!(
                    indirect.iter().any(|m| m == "KvServer.serve"),
                    "1.{to}: the accept loop must be indirect: {indirect:?}"
                ),
                _ => {}
            }
            let added: Vec<&str> = spec.added_classes.iter().map(|c| c.as_str()).collect();
            match to {
                6 => assert_eq!(added, ["Session"], "1.6 adds Session"),
                13 => assert_eq!(added, ["Expiry"], "1.13 adds Expiry"),
                17 => assert_eq!(added, ["AuthGuard"], "1.17 adds AuthGuard"),
                _ => assert!(added.is_empty(), "1.{to} adds no class"),
            }
        }
    }
}
