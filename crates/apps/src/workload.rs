//! Workload drivers: the reproduction's `httperf`.
//!
//! Host-side clients that connect to the guest servers through the
//! simulated network, keep a configurable number of requests in flight,
//! and record per-request latency in scheduler slices (the VM's virtual
//! milliseconds).

use std::time::{Duration, Instant};

use jvolve_vm::Vm;

/// Latency/throughput record for a load run.
#[derive(Debug, Clone, Default)]
pub struct LoadStats {
    /// Requests that received a response.
    pub completed: u64,
    /// Requests abandoned (no response before the run ended).
    pub abandoned: u64,
    /// Per-request latencies, in slices.
    pub latencies: Vec<u64>,
    /// Scheduler slices the run took.
    pub slices: u64,
    /// Host wall-clock time of the run (exposes per-instruction VM
    /// overhead, e.g. lazy-indirection checks, that the slice-based
    /// metric cannot see).
    pub wall: Duration,
}

impl LoadStats {
    /// Requests completed per 1000 slices (the throughput unit used by the
    /// Figure 5 harness).
    pub fn throughput_per_kslice(&self) -> f64 {
        if self.slices == 0 {
            return 0.0;
        }
        self.completed as f64 * 1000.0 / self.slices as f64
    }

    /// Requests completed per host wall-clock second.
    pub fn throughput_per_wall_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Median latency in slices.
    pub fn median_latency(&self) -> f64 {
        percentile(&self.latencies, 50.0)
    }

    /// Latency percentile in slices (e.g. 25.0, 75.0).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        percentile(&self.latencies, p)
    }
}

/// Percentile of a sample (nearest-rank; 0 for an empty sample).
pub fn percentile(samples: &[u64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64
}

/// Runs the VM until `port` has a listener (the server finished starting).
///
/// Returns `false` if the listener never appeared within `max_slices`.
pub fn wait_for_listener(vm: &mut Vm, port: u16, max_slices: usize) -> bool {
    for _ in 0..max_slices {
        if vm.net_mut().has_listener(port) {
            return true;
        }
        vm.step_slice();
    }
    vm.net_mut().has_listener(port)
}

/// Issues one single-line request and waits for the one-line response.
pub fn one_shot(vm: &mut Vm, port: u16, request: &str, max_slices: usize) -> Option<(String, u64)> {
    if !wait_for_listener(vm, port, max_slices) {
        return None;
    }
    let conn = vm.net_mut().client_connect(port)?;
    vm.net_mut().client_send(conn, request);
    let start = vm.tick();
    for _ in 0..max_slices {
        vm.step_slice();
        if let Some(resp) = vm.net_mut().client_recv(conn) {
            let latency = vm.tick() - start;
            vm.net_mut().client_close(conn);
            return Some((resp, latency));
        }
    }
    vm.net_mut().client_close(conn);
    None
}

/// Drives a closed-loop single-line-request workload (the webserver's
/// `GET <path>` protocol): keeps `concurrency` requests in flight for
/// `slices` scheduler slices.
pub fn drive_http(
    vm: &mut Vm,
    port: u16,
    paths: &[&str],
    concurrency: usize,
    slices: u64,
) -> LoadStats {
    let mut stats = LoadStats::default();
    let mut in_flight: Vec<(usize, u64)> = Vec::with_capacity(concurrency);
    let mut next_path = 0usize;
    let started = Instant::now();

    for _ in 0..slices {
        // Top up offered load.
        while in_flight.len() < concurrency {
            let Some(conn) = vm.net_mut().client_connect(port) else { break };
            let path = paths[next_path % paths.len()];
            next_path += 1;
            vm.net_mut().client_send(conn, format!("GET {path}"));
            in_flight.push((conn, vm.tick()));
        }

        vm.step_slice();
        stats.slices += 1;

        // Collect responses.
        let mut i = 0;
        while i < in_flight.len() {
            let (conn, started) = in_flight[i];
            if vm.net_mut().client_recv(conn).is_some() {
                vm.net_mut().client_close(conn);
                stats.completed += 1;
                stats.latencies.push(vm.tick() - started);
                in_flight.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
    stats.wall = started.elapsed();
    for (conn, _) in in_flight {
        vm.net_mut().client_close(conn);
        stats.abandoned += 1;
    }
    stats
}

/// A scripted multi-line session: sends each line, expecting one response
/// per line, then closes. Returns the responses, or `None` on timeout.
pub fn scripted_session(
    vm: &mut Vm,
    port: u16,
    lines: &[&str],
    max_slices: usize,
) -> Option<Vec<String>> {
    if !wait_for_listener(vm, port, max_slices) {
        return None;
    }
    let conn = vm.net_mut().client_connect(port)?;
    let mut responses = Vec::with_capacity(lines.len());
    let mut budget = max_slices;
    // The FTP server greets on connect.
    for line in lines {
        vm.net_mut().client_send(conn, *line);
        loop {
            if let Some(resp) = vm.net_mut().client_recv(conn) {
                responses.push(resp);
                break;
            }
            if budget == 0 {
                vm.net_mut().client_close(conn);
                return None;
            }
            vm.step_slice();
            budget -= 1;
        }
    }
    vm.net_mut().client_close(conn);
    Some(responses)
}

/// SMTP helper: submits one message (`SEND` then `QUIT`) and returns the
/// two replies.
pub fn smtp_send(
    vm: &mut Vm,
    port: u16,
    from: &str,
    to: &str,
    text: &str,
    max_slices: usize,
) -> Option<Vec<String>> {
    scripted_session(vm, port, &[&format!("SEND {from} {to} {text}"), "QUIT"], max_slices)
}

/// POP helper: authenticates and lists the mailbox (`USER`, `LIST`,
/// `QUIT`).
pub fn pop_list(vm: &mut Vm, port: u16, user: &str, max_slices: usize) -> Option<Vec<String>> {
    scripted_session(vm, port, &[&format!("USER {user}"), "LIST", "QUIT"], max_slices)
}

/// FTP helper: greeting, login, one `RETR`, quit. Returns all responses
/// (greeting included).
pub fn ftp_retr(
    vm: &mut Vm,
    port: u16,
    user: &str,
    pass: &str,
    path: &str,
    max_slices: usize,
) -> Option<Vec<String>> {
    if !wait_for_listener(vm, port, max_slices) {
        return None;
    }
    let conn = vm.net_mut().client_connect(port)?;
    let mut responses = Vec::new();
    let mut budget = max_slices;
    // Greeting arrives unprompted.
    loop {
        if let Some(resp) = vm.net_mut().client_recv(conn) {
            responses.push(resp);
            break;
        }
        if budget == 0 {
            vm.net_mut().client_close(conn);
            return None;
        }
        vm.step_slice();
        budget -= 1;
    }
    for line in [format!("USER {user} {pass}"), format!("RETR {path}"), "QUIT".to_string()] {
        vm.net_mut().client_send(conn, line);
        loop {
            if let Some(resp) = vm.net_mut().client_recv(conn) {
                responses.push(resp);
                break;
            }
            if budget == 0 {
                vm.net_mut().client_close(conn);
                return None;
            }
            vm.step_slice();
            budget -= 1;
        }
    }
    vm.net_mut().client_close(conn);
    Some(responses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_computation() {
        let xs = [10, 20, 30, 40, 50];
        assert_eq!(percentile(&xs, 50.0), 30.0);
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 50.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn load_stats_throughput() {
        let stats = LoadStats { completed: 50, slices: 1000, ..Default::default() };
        assert!((stats.throughput_per_kslice() - 50.0).abs() < 1e-9);
    }
}
