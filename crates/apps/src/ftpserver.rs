//! The `ftpserver` guest application — the reproduction's CrossFTP.
//!
//! Four releases, 1.05 through 1.08, preserving the kind structure of the
//! paper's Table 4 (every update adds or deletes fields, so none is
//! E&C-supportable):
//!
//! | update | classification | notes |
//! |---|---|---|
//! | 1.06 | class update | four classes added, `LegacyAuth` deleted, `FtpConfig` grows a field |
//! | 1.07 | class update | `UserDb`/`Perms`/`FtpSession` gain members; OSR lifts the session threads' `run()` |
//! | 1.08 | class update | **`RequestHandler.run` itself changes**: applies only when the server is idle — with active sessions the run frames never leave the stacks (paper §4.4) |
//!
//! Protocol (port 2121): `USER <name> <pass>`, `LIST`, `RETR <path>`,
//! `QUIT`; each connection is served by its own spawned `RequestHandler`
//! thread, the structure that makes 1.08 busy-sensitive.

use jvolve_vm::Vm;

use crate::common::{prefix_of, verify_replies, AppInstance, AppVersion, GuestApp, ProbeFailure};
use crate::workload::ftp_retr;

/// FTP port.
pub const PORT: u16 = 2121;

/// The ftpserver application.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ftpserver;

impl AppInstance for Ftpserver {
    fn name(&self) -> &'static str {
        "ftpserver"
    }
    fn port(&self) -> u16 {
        PORT
    }
    fn main_class(&self) -> &'static str {
        "FtpServer"
    }
    fn probe(&self, vm: &mut Vm, _seq: u64, max_slices: usize) -> Result<String, ProbeFailure> {
        let replies = ftp_retr(vm, PORT, "admin", "adminpw", "/motd.txt", max_slices);
        verify_replies(replies, &[(0, "220"), (1, "230"), (2, "226")])
    }
    fn settle_slices(&self) -> usize {
        // Each session spawns a RequestHandler thread that must exit
        // before an update can reach its safe point (paper §4.4).
        300
    }
}

impl GuestApp for Ftpserver {
    fn versions(&self) -> Vec<AppVersion> {
        (0..=3)
            .map(|v| {
                let label = LABELS[v];
                AppVersion {
                    label,
                    prefix: Box::leak(prefix_of(label).into_boxed_str()),
                    source: source(v),
                }
            })
            .collect()
    }
    fn expected_failures(&self) -> Vec<&'static str> {
        // 1.08 only fails under load; the idle update applies (paper §4.4).
        Vec::new()
    }
}

const LABELS: [&str; 4] = ["1.05", "1.06", "1.07", "1.08"];

/// Full MJ source of version index `v` (0 = 1.05).
pub fn source(v: usize) -> String {
    assert!(v <= 3, "ftpserver has versions 0..=3");
    let mut src = String::new();
    src.push_str(&ftp_config(v));
    src.push_str(&file_system(v));
    src.push_str(&user_db(v));
    src.push_str(&perms(v));
    src.push_str(COMMAND_PARSER);
    src.push_str(TRANSFER_LOG);
    if v == 0 {
        src.push_str(LEGACY_AUTH);
    }
    if v >= 1 {
        src.push_str(TRANSFER_STATS);
        src.push_str(THROTTLE);
        src.push_str(BANNER);
        src.push_str(MSG_CATALOG);
    }
    src.push_str(&ftp_session(v));
    src.push_str(&request_handler(v));
    src.push_str(LISTENER);
    src.push_str(FTP_SERVER);
    src
}

fn ftp_config(v: usize) -> String {
    match v {
        0 => "class FtpConfig {
  static field port: int;
  static field maxSessions: int;
  static method init(): void {
    FtpConfig.port = 2121;
    FtpConfig.maxSessions = 8;
  }
}
"
        .to_string(),
        1..=2 => "class FtpConfig {
  static field port: int;
  static field maxSessions: int;
  static field welcomeShown: int;
  static method init(): void {
    FtpConfig.port = 2121;
    FtpConfig.maxSessions = 8;
    FtpConfig.welcomeShown = 0;
  }
}
"
        .to_string(),
        _ => "class FtpConfig {
  static field port: int;
  static field maxSessions: int;
  static method init(): void {
    FtpConfig.port = 2121;
    FtpConfig.maxSessions = 16;
  }
}
"
        .to_string(),
    }
}

fn file_system(v: usize) -> String {
    let init_body = match v {
        0 => {
            "    FileSystem.paths = new String[8];
    FileSystem.contents = new String[8];
    FileSystem.count = 0;
    FileSystem.put(\"/motd.txt\", \"welcome aboard\");
    FileSystem.put(\"/report.csv\", \"a,b,c\");"
        }
        _ => {
            "    FileSystem.paths = new String[8];
    FileSystem.contents = new String[8];
    FileSystem.count = 0;
    FileSystem.put(\"/motd.txt\", \"welcome aboard\");
    FileSystem.put(\"/report.csv\", \"a,b,c\");
    FileSystem.put(\"/readme.txt\", \"see docs\");"
        }
    };
    let put_body = match v {
        0 => {
            "    FileSystem.paths[FileSystem.count] = p;
    FileSystem.contents[FileSystem.count] = c;
    FileSystem.count = FileSystem.count + 1;"
        }
        _ => {
            "    if (FileSystem.count < 8) {
      FileSystem.paths[FileSystem.count] = p;
      FileSystem.contents[FileSystem.count] = c;
      FileSystem.count = FileSystem.count + 1;
    }"
        }
    };
    let lookup_body = match v {
        0 => {
            "    var i: int = 0;
    while (i < FileSystem.count) {
      if (FileSystem.paths[i] == p) { return FileSystem.contents[i]; }
      i = i + 1;
    }
    return null;"
        }
        1 => {
            "    var key: String = Str.trim(p);
    var i: int = 0;
    while (i < FileSystem.count) {
      if (FileSystem.paths[i] == key) { return FileSystem.contents[i]; }
      i = i + 1;
    }
    return null;"
        }
        _ => {
            "    var key: String = Str.trim(p);
    if (Str.len(key) == 0) { return null; }
    var i: int = 0;
    while (i < FileSystem.count) {
      if (FileSystem.paths[i] == key) { return FileSystem.contents[i]; }
      i = i + 1;
    }
    return null;"
        }
    };
    let exists = if v >= 3 {
        "  static method exists(p: String): bool { return FileSystem.lookup(p) != null; }\n"
    } else {
        ""
    };
    format!(
        "class FileSystem {{
  static field paths: String[];
  static field contents: String[];
  static field count: int;
  static method init(): void {{
{init_body}
  }}
  static method put(p: String, c: String): void {{
{put_body}
  }}
  static method lookup(p: String): String {{
{lookup_body}
  }}
{exists}}}
"
    )
}

fn user_db(v: usize) -> String {
    let lockout = if v >= 2 {
        "  static field attempts: int[];
  static method recordAttempt(i: int): void {
    if (UserDb.attempts == null) { UserDb.attempts = new int[8]; }
    UserDb.attempts[i] = UserDb.attempts[i] + 1;
  }
  static method isLocked(i: int): bool {
    if (UserDb.attempts == null) { return false; }
    return UserDb.attempts[i] > 5;
  }
"
    } else {
        ""
    };
    let check_body = match v {
        0..=1 => {
            "    var i: int = 0;
    while (i < UserDb.n) {
      if (UserDb.names[i] == name && UserDb.passwords[i] == pass) { return true; }
      i = i + 1;
    }
    return false;"
        }
        _ => {
            "    var i: int = 0;
    while (i < UserDb.n) {
      if (UserDb.names[i] == name) {
        if (UserDb.isLocked(i)) { return false; }
        if (UserDb.passwords[i] == pass) { return true; }
        UserDb.recordAttempt(i);
        return false;
      }
      i = i + 1;
    }
    return false;"
        }
    };
    format!(
        "class UserDb {{
  static field names: String[];
  static field passwords: String[];
  static field n: int;
{lockout}  static method init(): void {{
    UserDb.names = new String[8];
    UserDb.passwords = new String[8];
    UserDb.n = 0;
    UserDb.add(\"admin\", \"adminpw\");
    UserDb.add(\"guest\", \"guestpw\");
  }}
  static method add(name: String, pass: String): void {{
    UserDb.names[UserDb.n] = name;
    UserDb.passwords[UserDb.n] = pass;
    UserDb.n = UserDb.n + 1;
  }}
  static method check(name: String, pass: String): bool {{
{check_body}
  }}
}}
"
    )
}

fn perms(v: usize) -> String {
    match v {
        0..=1 => "class Perms {
  static method canRead(user: String, path: String): bool {
    if (user == null) { return false; }
    return !Str.contains(path, \"secret\");
  }
}
"
        .to_string(),
        2 => "class Perms {
  static field strictMode: int;
  static method setStrict(on: int): void { Perms.strictMode = on; }
  static method canRead(user: String, path: String): bool {
    if (user == null) { return false; }
    if (Perms.strictMode > 0 && Str.contains(path, \".cfg\")) { return false; }
    return !Str.contains(path, \"secret\");
  }
}
"
        .to_string(),
        _ => "class Perms {
  static method canRead(user: String, path: String): bool {
    if (user == null) { return false; }
    if (Str.contains(path, \".cfg\")) { return false; }
    return !Str.contains(path, \"secret\");
  }
}
"
        .to_string(),
    }
}

const COMMAND_PARSER: &str = "class CommandParser {
  static method parse(line: String): String[] {
    return Str.split(Str.trim(line), \" \");
  }
}
";

const TRANSFER_LOG: &str = "class TransferLog {
  static field transfers: int;
  static method record(path: String): void {
    TransferLog.transfers = TransferLog.transfers + 1;
  }
}
";

const LEGACY_AUTH: &str = "class LegacyAuth {
  static method check(name: String): bool { return Str.len(name) > 0; }
}
";

const TRANSFER_STATS: &str = "class TransferStats {
  static field bytes: int;
  static field files: int;
  static method record(n: int): void {
    TransferStats.bytes = TransferStats.bytes + n;
    TransferStats.files = TransferStats.files + 1;
  }
}
";

const THROTTLE: &str = "class Throttle {
  static field delayMs: int;
  static method apply(): void {
    if (Throttle.delayMs > 0) { Sys.sleep(Throttle.delayMs); }
  }
}
";

const BANNER: &str = "class Banner {
  static method text(): String { return \"220 crossftp ready\"; }
}
";

const MSG_CATALOG: &str = "class MsgCatalog {
  static method msg(code: int): String {
    if (code == 221) { return \"221 bye\"; }
    if (code == 230) { return \"230 ok\"; }
    if (code == 530) { return \"530 bad\"; }
    return \"500 err\";
  }
}
";

fn ftp_session(v: usize) -> String {
    let login_time = if v >= 2 { "  field loginTime: int;\n" } else { "" };
    let ctor_body = if v >= 2 {
        "    this.authed = 0;\n    this.loginTime = 0;"
    } else {
        "    this.authed = 0;"
    };
    let auth_body = match v {
        0..=1 => {
            "    if (UserDb.check(name, pass)) {
      this.user = name;
      this.authed = 1;
      return true;
    }
    return false;"
        }
        _ => {
            "    if (UserDb.check(name, pass)) {
      this.user = name;
      this.authed = 1;
      this.loginTime = Sys.time();
      return true;
    }
    return false;"
        }
    };
    format!(
        "class FtpSession {{
  field user: String;
  field authed: int;
{login_time}  ctor() {{
{ctor_body}
  }}
  method authenticate(name: String, pass: String): bool {{
{auth_body}
  }}
  method isAuthed(): bool {{ return this.authed > 0; }}
  method userName(): String {{ return this.user; }}
}}
"
    )
}

fn request_handler(v: usize) -> String {
    // The session body is identical for 1.05–1.07 (so those updates never
    // restrict `run`); 1.08 changes it — the paper's busy-sensitive update.
    let run_body = match v {
        0..=2 => {
            "    var session: FtpSession = new FtpSession();
    Net.write(this.conn, \"220 ready\");
    while (true) {
      var line: String = Net.readLine(this.conn);
      if (line == null) { Net.close(this.conn); return; }
      var parts: String[] = CommandParser.parse(line);
      if (parts[0] == \"QUIT\") { Net.write(this.conn, \"221 bye\"); Net.close(this.conn); return; }
      if (parts[0] == \"USER\" && parts.length >= 3) {
        if (session.authenticate(parts[1], parts[2])) { Net.write(this.conn, \"230 ok\"); }
        else { Net.write(this.conn, \"530 bad\"); }
      } else {
        if (!session.isAuthed()) { Net.write(this.conn, \"530 login first\"); } else {
          if (parts[0] == \"LIST\") {
            Net.write(this.conn, \"150 \" + Str.fromInt(FileSystem.count) + \" files\");
          } else {
            if (parts[0] == \"RETR\" && parts.length >= 2) {
              if (!Perms.canRead(session.userName(), parts[1])) { Net.write(this.conn, \"550 denied\"); }
              else {
                var content: String = FileSystem.lookup(parts[1]);
                if (content == null) { Net.write(this.conn, \"550 missing\"); }
                else { TransferLog.record(parts[1]); Net.write(this.conn, \"226 \" + content); }
              }
            } else {
              Net.write(this.conn, \"500 err\");
            }
          }
        }
      }
    }"
        }
        _ => {
            "    var session: FtpSession = new FtpSession();
    Net.write(this.conn, \"220 ready\");
    while (true) {
      var line: String = Net.readLine(this.conn);
      if (line == null) { Net.close(this.conn); return; }
      Throttle.apply();
      var parts: String[] = CommandParser.parse(line);
      if (parts[0] == \"QUIT\") { Net.write(this.conn, \"221 bye\"); Net.close(this.conn); return; }
      if (parts[0] == \"USER\" && parts.length >= 3) {
        if (session.authenticate(parts[1], parts[2])) { Net.write(this.conn, \"230 ok\"); }
        else { Net.write(this.conn, \"530 bad\"); }
      } else {
        if (!session.isAuthed()) { Net.write(this.conn, \"530 login first\"); } else {
          if (parts[0] == \"LIST\") {
            Net.write(this.conn, \"150 \" + Str.fromInt(FileSystem.count) + \" files\");
          } else {
            if (parts[0] == \"RETR\" && parts.length >= 2) {
              if (!Perms.canRead(session.userName(), parts[1])) { Net.write(this.conn, \"550 denied\"); }
              else {
                var content: String = FileSystem.lookup(parts[1]);
                if (content == null) { Net.write(this.conn, \"550 missing\"); }
                else {
                  TransferLog.record(parts[1]);
                  TransferStats.record(Str.len(content));
                  Net.write(this.conn, \"226 \" + content);
                }
              }
            } else {
              Net.write(this.conn, \"500 err\");
            }
          }
        }
      }
    }"
        }
    };
    format!(
        "class RequestHandler {{
  field conn: int;
  ctor(c: int) {{ this.conn = c; }}
  method run(): void {{
{run_body}
  }}
}}
"
    )
}

/// Stable forever: spawns one handler thread per connection.
const LISTENER: &str = "class Listener {
  static method acceptLoop(l: int): void {
    while (true) {
      var c: int = Net.accept(l);
      Sys.spawn(new RequestHandler(c));
    }
  }
  static method start(): void {
    var l: int = Net.listen(FtpConfig.port);
    Listener.acceptLoop(l);
  }
}
";

const FTP_SERVER: &str = "class FtpServer {
  static method main(): void {
    FtpConfig.init();
    FileSystem.init();
    UserDb.init();
    Listener.start();
  }
}
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::GuestApp;

    #[test]
    fn every_version_compiles() {
        for v in Ftpserver.versions() {
            v.compile();
        }
    }

    #[test]
    fn consecutive_versions_differ() {
        let versions = Ftpserver.versions();
        for w in versions.windows(2) {
            assert_ne!(w[0].source, w[1].source, "{} vs {}", w[0].label, w[1].label);
        }
    }

    #[test]
    fn run_body_is_stable_until_108() {
        // The paper's key structural property: RequestHandler.run only
        // changes in the 1.08 update.
        assert_eq!(request_handler(0), request_handler(1));
        assert_eq!(request_handler(1), request_handler(2));
        assert_ne!(request_handler(2), request_handler(3));
    }
}
