//! Shared machinery: boot a guest app at a version, drive it, and attempt
//! live updates between consecutive versions — the paper's §4 methodology
//! ("we ran Jetty under full load; after 30 seconds we tried to apply the
//! update to the next version").

use jvolve::{
    ApplyOptions, StepProgress, Update, UpdateController, UpdateError, UpdateEventSink,
    UpdateOutcome, UpdatePhase, UpdateStats,
};
use jvolve_classfile::ClassFile;
use jvolve_vm::{Vm, VmConfig};

use crate::common::{AppInstance, GuestApp};
use crate::emailserver;
use crate::workload::wait_for_listener;

/// VM configuration used by the app harness: a mid-sized heap and a small
/// quantum so thread interleaving is realistic.
pub fn app_vm_config() -> VmConfig {
    VmConfig { semispace_words: 512 * 1024, quantum: 300, ..VmConfig::default() }
}

/// Boots `app` at version index `from` and waits until it listens.
///
/// # Panics
///
/// Panics if the app fails to load or never starts listening (fixture
/// bug, caught by tests).
pub fn boot(app: &dyn GuestApp, from: usize) -> Vm {
    boot_with(app, from, app_vm_config())
}

/// [`boot`] with an explicit VM configuration.
pub fn boot_with(app: &dyn GuestApp, from: usize, config: VmConfig) -> Vm {
    let versions = app.versions();
    let version = &versions[from];
    boot_classes(app, &version.compile(), config)
}

/// Boots an [`AppInstance`] from already-compiled classes (the fleet's
/// shard boot and redeploy path, which carries class files rather than a
/// version index).
///
/// # Panics
///
/// Panics if the app fails to load or never starts listening (fixture
/// bug, caught by tests).
pub fn boot_classes(app: &dyn AppInstance, classes: &[ClassFile], config: VmConfig) -> Vm {
    let mut vm = Vm::new(config);
    vm.load_classes(classes)
        .unwrap_or_else(|e| panic!("{} fails to load: {e}", app.name()));
    vm.spawn(app.main_class(), "main")
        .unwrap_or_else(|e| panic!("{} has no main: {e}", app.name()));
    assert!(
        wait_for_listener(&mut vm, app.port(), 50_000),
        "{} never started listening",
        app.name()
    );
    vm
}

/// The custom transformer source the developer supplies for a release, if
/// any (the paper's Figure 3 customization for JavaEmailServer 1.3.2).
/// The per-class method pair is assembled into a full `JvolveTransformers`
/// class with the same assembler the UPT uses, so the hand path and the
/// per-class override path share one representation.
pub fn custom_transformer(app: &dyn GuestApp, to_label: &str) -> Option<String> {
    if app.name() == "emailserver" && to_label == "1.3.2" {
        Some(jvolve::transform::assemble_transformers_source([emailserver::FIGURE3_USER_METHODS]))
    } else {
        None
    }
}

/// Prepares the update taking version `from` to `from + 1` of `app`,
/// with the release's custom transformer attached when one exists.
///
/// # Panics
///
/// Panics if preparation fails (fixture bug).
pub fn prepare_next(app: &dyn GuestApp, from: usize) -> Update {
    let versions = app.versions();
    let old = versions[from].compile();
    let new = versions[from + 1].compile();
    let mut update = Update::prepare(&old, &new, versions[from + 1].prefix)
        .unwrap_or_else(|e| {
            panic!("{}: preparing {}->{} failed: {e}", app.name(), from, from + 1)
        });
    if let Some(source) = custom_transformer(app, versions[from + 1].label) {
        update.set_transformers_source(source);
    }
    update
}

/// Attempts the live update `from → from + 1` on a running VM.
pub fn attempt_update(
    vm: &mut Vm,
    app: &dyn GuestApp,
    from: usize,
    opts: &ApplyOptions,
) -> (UpdateOutcome, Option<UpdateStats>) {
    attempt_update_interleaved(vm, app, from, opts, |_| {})
}

/// [`attempt_update`] through the resumable [`UpdateController`], calling
/// `pump` between steps whenever the guest is allowed to run: while the
/// update waits for a safe point, and — under `VmConfig::lazy_migration`
/// — while the lazy epoch drains. The pump may drive the VM's workload —
/// issue requests, run extra slices — so the app keeps serving
/// mid-update, exactly the paper's §4 setup of updating Jetty under full
/// load. During the remaining (stop-the-world) phases the pump is not
/// called.
pub fn attempt_update_interleaved(
    vm: &mut Vm,
    app: &dyn GuestApp,
    from: usize,
    opts: &ApplyOptions,
    pump: impl FnMut(&mut Vm),
) -> (UpdateOutcome, Option<UpdateStats>) {
    let update = prepare_next(app, from);
    apply_prepared_interleaved(vm, &update, opts, None, pump)
}

/// The one interleaved-apply path shared by the single-VM harness and the
/// fleet shards: steps a controller over a *prepared* update, calling
/// `pump` whenever the guest may run (safe-point wait, lazy epoch), and
/// forwarding events to `sink` when one is given.
pub fn apply_prepared_interleaved(
    vm: &mut Vm,
    update: &Update,
    opts: &ApplyOptions,
    sink: Option<&mut dyn UpdateEventSink>,
    mut pump: impl FnMut(&mut Vm),
) -> (UpdateOutcome, Option<UpdateStats>) {
    let mut controller = UpdateController::new(update, opts.clone());
    if let Some(sink) = sink {
        controller.attach_sink(sink);
    }
    loop {
        match controller.step(vm) {
            StepProgress::Pending(UpdatePhase::WaitingForSafePoint)
            | StepProgress::Pending(UpdatePhase::LazyMigrating) => pump(vm),
            StepProgress::Pending(_) => {}
            StepProgress::Committed => {
                let stats = controller.stats().clone();
                let outcome = UpdateOutcome::Applied {
                    used_osr: stats.osr_replacements > 0,
                    barriers: stats.barriers_installed,
                };
                return (outcome, Some(stats));
            }
            StepProgress::Aborted => {
                let outcome = match controller.error() {
                    Some(UpdateError::Timeout { blocking, .. }) => {
                        UpdateOutcome::TimedOut { blocking: blocking.clone() }
                    }
                    Some(e) => UpdateOutcome::Failed { reason: e.to_string() },
                    None => UpdateOutcome::Failed { reason: "update aborted".to_string() },
                };
                return (outcome, None);
            }
        }
    }
}

/// Default apply options for the app benchmarks: a timeout that is long
/// enough for barriers to fire under load but short enough to prove the
/// always-on-stack failures quickly (the paper's 15 s, in slices).
pub fn bench_apply_options() -> ApplyOptions {
    ApplyOptions { timeout_slices: 3_000, ..ApplyOptions::default() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::webserver::Webserver;

    #[test]
    fn webserver_boots_and_serves() {
        let mut vm = boot(&Webserver, 0);
        let resp = crate::workload::one_shot(&mut vm, 8080, "GET /index.html", 20_000).unwrap();
        assert_eq!(resp.0, "200 <html>welcome</html>");
    }

    #[test]
    fn custom_transformer_only_for_132() {
        assert!(custom_transformer(&crate::Emailserver, "1.3.2").is_some());
        assert!(custom_transformer(&crate::Emailserver, "1.3.1").is_none());
        assert!(custom_transformer(&Webserver, "5.1.2").is_none());
    }
}
