//! `fleet_run` — serve a guest application on a sharded multi-VM fleet,
//! optionally rolling a live update across the shards.
//!
//! ```text
//! fleet_run --app webserver|emailserver|ftpserver|kvstore [--shards N] [--from I]
//!           [--requests N] [--no-jit | --jit-threshold N]
//!           [--roll [--eager] [--probes N] [--update-bundle dir/]]
//! ```
//!
//! Boots `--shards` OS-thread VM shards, each running its own copy of the
//! app at version index `--from`, serves `--requests` verified exchanges
//! round-robin across them, and — with `--roll` — rolls the update to
//! version `--from + 1` shard-by-shard: drain, apply (lazily unless
//! `--eager`), health-gate via the typed event stream plus `--probes`
//! verified probe exchanges, promote — or roll the fleet back to the old
//! version on the first failure.
//!
//! `--no-jit` and `--jit-threshold N` pass the template-JIT tier knobs
//! through to every shard's VM, exactly as on `jvolve_run`. With
//! `--update-bundle` the rolled update comes from a UPT-emitted bundle
//! directory (re-verified on load) instead of the app's built-in next
//! version.
//!
//! Unknown flags, missing or malformed values, duplicate flags, and
//! conflicting combinations (`--eager`/`--probes`/`--update-bundle`
//! without `--roll`, `--jit-threshold` with `--no-jit`) are rejected
//! with the usage message and exit code 2.

use std::process::ExitCode;
use std::sync::Arc;

use jvolve_apps::fleet::{Fleet, RollOptions};
use jvolve_apps::harness::{app_vm_config, bench_apply_options, prepare_next};
use jvolve_apps::{AppInstance, Emailserver, Ftpserver, GuestApp, Kvstore, Webserver};

const USAGE: &str = "usage: fleet_run --app webserver|emailserver|ftpserver|kvstore [--shards N] [--from I] \
     [--requests N] [--no-jit | --jit-threshold N] \
     [--roll [--eager] [--probes N] [--update-bundle dir/]]";

/// Parsed command line. Every flag is strict: unknown names, missing or
/// malformed values, duplicates, and conflicts are parse errors.
struct Cli {
    app: String,
    shards: usize,
    from: usize,
    requests: u64,
    jit: bool,
    jit_threshold: Option<u32>,
    roll: bool,
    eager: bool,
    probes: u32,
    update_bundle: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut values: [(&str, Option<String>); 7] = [
        ("--app", None),
        ("--shards", None),
        ("--from", None),
        ("--requests", None),
        ("--jit-threshold", None),
        ("--probes", None),
        ("--update-bundle", None),
    ];
    let mut jit = true;
    let mut roll = false;
    let mut eager = false;

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--roll" => {
                if roll {
                    return Err("duplicate flag --roll".into());
                }
                roll = true;
                i += 1;
            }
            "--eager" => {
                if eager {
                    return Err("duplicate flag --eager".into());
                }
                eager = true;
                i += 1;
            }
            "--no-jit" => {
                if !jit {
                    return Err("duplicate flag --no-jit".into());
                }
                jit = false;
                i += 1;
            }
            _ if arg.starts_with("--") => {
                // All value-taking flags share one fetch-and-dedup path.
                let slot = values
                    .iter_mut()
                    .find(|(name, _)| *name == arg)
                    .map(|(_, slot)| slot)
                    .ok_or_else(|| format!("unknown flag {arg}"))?;
                if slot.is_some() {
                    return Err(format!("duplicate flag {arg}"));
                }
                let v = args.get(i + 1).ok_or_else(|| format!("{arg} needs a value"))?;
                if v.starts_with("--") {
                    return Err(format!("{arg} needs a value, got flag {v}"));
                }
                *slot = Some(v.clone());
                i += 2;
            }
            _ => return Err(format!("unexpected argument {arg}")),
        }
    }
    let mut take = |name: &str| {
        values.iter_mut().find(|(n, _)| *n == name).expect("known flag").1.take()
    };
    let app = take("--app").ok_or_else(|| "--app is required".to_string())?;
    let shards = take("--shards");
    let from = take("--from");
    let requests = take("--requests");
    let jit_threshold = take("--jit-threshold");
    let probes = take("--probes");
    let update_bundle = take("--update-bundle");

    if !roll {
        for (flag, set) in [
            ("--eager", eager),
            ("--probes", probes.is_some()),
            ("--update-bundle", update_bundle.is_some()),
        ] {
            if set {
                return Err(format!("{flag} requires --roll"));
            }
        }
    }
    if jit_threshold.is_some() && !jit {
        // There is no tier for the threshold to tune.
        return Err("--jit-threshold conflicts with --no-jit".into());
    }
    Ok(Cli {
        app,
        shards: parse_num("--shards", shards)?.unwrap_or(4).max(1),
        from: parse_num("--from", from)?.unwrap_or(0),
        requests: parse_num("--requests", requests)?.unwrap_or(50) as u64,
        jit,
        jit_threshold: parse_num("--jit-threshold", jit_threshold)?
            .map(|n| u32::try_from(n.max(1)).unwrap_or(u32::MAX)),
        roll,
        eager,
        probes: parse_num("--probes", probes)?.unwrap_or(4).max(1) as u32,
        update_bundle,
    })
}

fn parse_num(flag: &str, value: Option<String>) -> Result<Option<usize>, String> {
    value
        .map(|v| v.parse().map_err(|_| format!("{flag} expects a number, got {v}")))
        .transpose()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("fleet_run: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let app: Box<dyn GuestApp> = match cli.app.as_str() {
        "webserver" => Box::new(Webserver),
        "emailserver" => Box::new(Emailserver),
        "ftpserver" => Box::new(Ftpserver),
        "kvstore" => Box::new(Kvstore),
        other => {
            eprintln!("fleet_run: unknown app {other}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let versions = app.versions();
    let last_bootable = if cli.roll { versions.len() - 2 } else { versions.len() - 1 };
    if cli.from > last_bootable {
        eprintln!(
            "fleet_run: --from {} out of range for {} ({} versions{})",
            cli.from,
            app.name(),
            versions.len(),
            if cli.roll { ", --roll needs a successor" } else { "" }
        );
        return ExitCode::FAILURE;
    }

    let mut config = app_vm_config();
    config.lazy_migration = cli.roll && !cli.eager;
    config.enable_jit = cli.jit;
    if let Some(threshold) = cli.jit_threshold {
        config.jit_threshold = threshold;
    }
    let instance: Arc<dyn AppInstance> = match cli.app.as_str() {
        "webserver" => Arc::new(Webserver),
        "emailserver" => Arc::new(Emailserver),
        "kvstore" => Arc::new(Kvstore),
        _ => Arc::new(Ftpserver),
    };
    let classes = versions[cli.from].compile();
    eprintln!(
        "fleet_run: booting {} shards of {} {}",
        cli.shards,
        app.name(),
        versions[cli.from].label
    );
    let mut fleet = Fleet::boot(instance, classes, cli.shards, &config);

    let report = fleet.run_requests(cli.requests);
    println!(
        "served {} requests across {} shards in {:.1} ms ({} incorrect)",
        report.completed,
        cli.shards,
        report.wall.as_secs_f64() * 1e3,
        report.incorrect
    );
    if report.incorrect > 0 {
        return ExitCode::FAILURE;
    }

    if cli.roll {
        let update = match &cli.update_bundle {
            // A UPT-emitted bundle replaces the built-in next version's
            // prepared update (spec and payloads re-verified on load).
            Some(dir) => match jvolve::bundle::load(std::path::Path::new(dir)) {
                Ok(update) => update,
                Err(e) => {
                    eprintln!("fleet_run: {dir}: {e}");
                    fleet.shutdown();
                    return ExitCode::FAILURE;
                }
            },
            None => prepare_next(app.as_ref(), cli.from),
        };
        let mode = if cli.eager { "eager" } else { "lazy" };
        eprintln!(
            "fleet_run: rolling {} -> {} ({mode}) ...",
            versions[cli.from].label,
            versions[cli.from + 1].label
        );
        let ropts = RollOptions { probes_per_shard: cli.probes, ..RollOptions::default() };
        let roll = fleet.roll(&update, &bench_apply_options(), &ropts);
        for s in &roll.shards {
            println!("shard {}: {}", s.shard, s.detail);
        }
        println!(
            "roll {}: {} mid-roll responses, {} dropped, {} incorrect, fingerprints {}",
            if roll.rolled_back { "ROLLED BACK" } else { "complete" },
            roll.mid_roll_responses,
            roll.dropped,
            roll.incorrect,
            if roll.fingerprints_converged() { "converged" } else { "DIVERGED" }
        );
        if roll.rolled_back || !roll.fingerprints_converged() {
            fleet.shutdown();
            return ExitCode::FAILURE;
        }
    }
    fleet.shutdown();
    ExitCode::SUCCESS
}
