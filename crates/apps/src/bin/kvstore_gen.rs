//! `kvstore_gen` — writes the kvstore release stream's committed example
//! files (`examples/mj/kvstore_v01.mj` … `kvstore_v21.mj`) from the
//! in-crate generator, so the checked-in sources and the test fixtures
//! can never drift (a test compares them byte for byte).
//!
//! ```text
//! kvstore_gen [--dir examples/mj]
//! ```
//!
//! Unknown flags, missing values, and duplicates are rejected with the
//! usage message and exit code 2.

use std::path::PathBuf;
use std::process::ExitCode;

use jvolve_apps::kvstore::{example_file_content, example_file_name, VERSIONS};

const USAGE: &str = "usage: kvstore_gen [--dir examples/mj]";

fn parse_args(args: &[String]) -> Result<PathBuf, String> {
    let mut dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--dir" => {
                if dir.is_some() {
                    return Err("duplicate flag --dir".into());
                }
                let v = args.get(i + 1).ok_or("--dir needs a value")?;
                if v.starts_with("--") {
                    return Err(format!("--dir needs a value, got flag {v}"));
                }
                dir = Some(v.clone());
                i += 2;
            }
            _ => return Err(format!("unknown argument {arg}")),
        }
    }
    Ok(dir.map_or_else(|| PathBuf::from("examples/mj"), PathBuf::from))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = match parse_args(&args) {
        Ok(dir) => dir,
        Err(e) => {
            eprintln!("kvstore_gen: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("kvstore_gen: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for v in 0..VERSIONS {
        let path = dir.join(example_file_name(v));
        if let Err(e) = std::fs::write(&path, example_file_content(v)) {
            eprintln!("kvstore_gen: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!("wrote {VERSIONS} kvstore versions to {}", dir.display());
    ExitCode::SUCCESS
}
