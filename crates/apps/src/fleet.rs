//! The sharded serving fleet: N OS-thread VM shards behind one
//! connection-distributing acceptor, updated one shard at a time.
//!
//! The paper updates *one* VM while it serves traffic; the fleet scales
//! that to many isolated VMs behind a front end — the deployment shape a
//! "millions of users" service actually runs. Each shard is an OS thread
//! owning its own [`Vm`] plus an embedded [`AppInstance`]; the
//! coordinator distributes requests round-robin over the serving shards
//! and rolls an update across them:
//!
//! 1. **drain** — the shard's command queue is FIFO and every exchange is
//!    served to completion before the next command, so queueing the
//!    update *behind* the in-flight requests drains them by construction;
//!    requests that race in during the safe-point wait or the lazy epoch
//!    are served by the update pump, so nothing is ever dropped;
//! 2. **apply** — the shard runs its own resumable `UpdateController`
//!    (through the same [`apply_prepared_interleaved`] path as the
//!    single-VM harness), forwarding every typed [`UpdateEvent`] to the
//!    coordinator over a `Send` channel sink;
//! 3. **health gate** — the coordinator requires a `Committed` event (and
//!    no `Aborted`) in the shard's event stream, then a burst of verified
//!    probe exchanges against the updated shard;
//! 4. **promote or roll back** — on success the next shard rolls; on an
//!    install failure the failing shard has already restored itself via
//!    the controller's rollback ledger, and the coordinator rolls the
//!    *fleet* back by redeploying every already-promoted shard to the old
//!    version, converging all shards to a bit-identical
//!    [`version_fingerprint`](jvolve_vm::Registry::version_fingerprint).
//!
//! Mixed versions mid-roll are expected and tolerated: probes verify
//! status prefixes, not version-specific bodies, exactly the
//! backward-compatibility discipline a rolling deployment needs.

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use jvolve::{ApplyOptions, Update, UpdateEvent, UpdateEventSink, UpdateOutcome};
use jvolve_classfile::ClassFile;
use jvolve_vm::VmConfig;

use crate::common::{AppInstance, ProbeFailure};
use crate::harness::{apply_prepared_interleaved, boot_classes};

/// Slice budget for one client exchange against a shard.
const EXCHANGE_BUDGET: usize = 40_000;
/// Coordinator poll tick while waiting on shard messages.
const RECV_TICK: Duration = Duration::from_millis(5);
/// Hard ceiling on any single coordinator wait; a shard that stays silent
/// this long is a bug, not a slow update.
const HARD_WAIT: Duration = Duration::from_secs(300);
/// Outstanding requests allowed per serving shard while a roll pumps
/// background load.
const IN_FLIGHT_PER_SHARD: u64 = 4;

/// Commands the coordinator sends a shard. The queue is FIFO and every
/// command is handled to completion, which is what makes "drain then
/// update" a matter of message ordering.
enum ShardCmd {
    /// Serve one verified client exchange (`seq` varies the request).
    Exchange { seq: u64 },
    /// Apply a prepared update via the shard's own controller.
    Update { update: Arc<Update>, opts: Box<ApplyOptions> },
    /// Run `count` verified health probes and report the tally.
    Probe { count: u32 },
    /// Replace the VM with a fresh boot of `classes` (fleet rollback of
    /// an already-committed shard).
    Redeploy { classes: Arc<Vec<ClassFile>> },
    /// Report the registry's defs-only version fingerprint.
    Fingerprint,
    /// Exit the shard thread.
    Stop,
}

/// Messages shards send back to the coordinator.
enum ShardMsg {
    /// One exchange finished.
    Response { result: Result<String, ProbeFailure> },
    /// One controller event, forwarded mid-update.
    Event { shard: usize, event: UpdateEvent },
    /// The shard's update attempt finished.
    UpdateDone { shard: usize, outcome: UpdateOutcome },
    /// A probe burst finished.
    ProbeDone { shard: usize, ok: u32, failed: u32 },
    /// A redeploy finished.
    Redeployed { shard: usize },
    /// A fingerprint, as requested.
    Fingerprint { shard: usize, digest: String },
    /// The shard thread is exiting.
    Stopped,
}

/// An [`UpdateEventSink`] that forwards the typed event stream across the
/// shard → coordinator channel (possible because sinks are `Send`).
struct ChannelSink {
    shard: usize,
    tx: Sender<ShardMsg>,
}

impl UpdateEventSink for ChannelSink {
    fn event(&mut self, event: &UpdateEvent) {
        let _ = self.tx.send(ShardMsg::Event { shard: self.shard, event: event.clone() });
    }
}

/// The shard thread: boot, then serve commands until [`ShardCmd::Stop`].
fn shard_main(
    shard: usize,
    app: Arc<dyn AppInstance>,
    classes: Arc<Vec<ClassFile>>,
    config: VmConfig,
    rx: Receiver<ShardCmd>,
    tx: Sender<ShardMsg>,
) {
    let mut vm = boot_classes(&*app, &classes, config.clone());
    let mut seq_fallback = 0u64;
    let mut stashed: VecDeque<ShardCmd> = VecDeque::new();
    loop {
        let cmd = match stashed.pop_front() {
            Some(cmd) => cmd,
            None => match rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => return, // coordinator gone
            },
        };
        match cmd {
            ShardCmd::Exchange { seq } => {
                let result = app.probe(&mut vm, seq, EXCHANGE_BUDGET);
                if tx.send(ShardMsg::Response { result }).is_err() {
                    return;
                }
            }
            ShardCmd::Update { update, opts } => {
                // Client traffic is drained (FIFO put it before this
                // command); let session-handler threads exit so the safe
                // point is reachable.
                let settle = app.settle_slices();
                if settle > 0 {
                    vm.run_slices(settle);
                }
                let mut sink = ChannelSink { shard, tx: tx.clone() };
                let (outcome, _) = apply_prepared_interleaved(
                    &mut vm,
                    &update,
                    &opts,
                    Some(&mut sink),
                    |vm| {
                        // The guest may run: serve exchanges that raced in
                        // after the update command — mid-update serving is
                        // the whole point. Anything else waits its turn.
                        match rx.try_recv() {
                            Ok(ShardCmd::Exchange { seq }) => {
                                let result = app.probe(vm, seq, EXCHANGE_BUDGET);
                                let _ = tx.send(ShardMsg::Response { result });
                            }
                            Ok(other) => stashed.push_back(other),
                            Err(TryRecvError::Empty | TryRecvError::Disconnected) => {
                                vm.run_slices(1);
                            }
                        }
                    },
                );
                if tx.send(ShardMsg::UpdateDone { shard, outcome }).is_err() {
                    return;
                }
            }
            ShardCmd::Probe { count } => {
                let mut ok = 0;
                let mut failed = 0;
                for _ in 0..count {
                    seq_fallback += 1;
                    match app.probe(&mut vm, seq_fallback, EXCHANGE_BUDGET) {
                        Ok(_) => ok += 1,
                        Err(_) => failed += 1,
                    }
                }
                if tx.send(ShardMsg::ProbeDone { shard, ok, failed }).is_err() {
                    return;
                }
            }
            ShardCmd::Redeploy { classes } => {
                vm = boot_classes(&*app, &classes, config.clone());
                if tx.send(ShardMsg::Redeployed { shard }).is_err() {
                    return;
                }
            }
            ShardCmd::Fingerprint => {
                let digest = vm.registry().version_fingerprint();
                if tx.send(ShardMsg::Fingerprint { shard, digest }).is_err() {
                    return;
                }
            }
            ShardCmd::Stop => {
                let _ = tx.send(ShardMsg::Stopped);
                return;
            }
        }
    }
}

struct ShardHandle {
    tx: Sender<ShardCmd>,
    join: Option<JoinHandle<()>>,
    /// Whether the acceptor may route new requests here.
    serving: bool,
}

/// Aggregate counters for a batch of fleet requests.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests that completed with a verified-correct response.
    pub completed: u64,
    /// Requests whose response failed verification (or timed out).
    pub incorrect: u64,
    /// Host wall-clock time of the batch.
    pub wall: Duration,
}

/// Fault injection for [`Fleet::roll`] (test/bench hooks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RollFault {
    /// Corrupt the named shard's update payload so installation fails and
    /// the shard's controller rolls itself back via its ledger.
    InstallFailure {
        /// Shard index the fault hits.
        shard: usize,
    },
    /// Let the named shard commit, then treat its health probes as timed
    /// out — the "update applied but the service is sick" case only the
    /// coordinator can see.
    HealthTimeout {
        /// Shard index the fault hits.
        shard: usize,
    },
}

/// Knobs for [`Fleet::roll`].
#[derive(Clone, Debug)]
pub struct RollOptions {
    /// Verified probe exchanges required to promote each updated shard.
    pub probes_per_shard: u32,
    /// Keep submitting background requests to the serving shards while
    /// each shard updates (the rolling-under-load shape).
    pub load_during_roll: bool,
    /// Injected fault, if any.
    pub fault: Option<RollFault>,
}

impl Default for RollOptions {
    fn default() -> Self {
        RollOptions { probes_per_shard: 4, load_during_roll: true, fault: None }
    }
}

/// Per-shard outcome of one roll.
#[derive(Clone, Debug)]
pub struct ShardRollReport {
    /// Shard index, in roll order.
    pub shard: usize,
    /// Whether this shard's controller committed the update.
    pub committed: bool,
    /// Probes answered correctly at the health gate.
    pub probes_ok: u32,
    /// Probes failed at the health gate.
    pub probes_failed: u32,
    /// Whether the shard passed the full health gate (event stream +
    /// probes) and was promoted.
    pub healthy: bool,
    /// Human-readable detail (commit, abort reason, injected fault).
    pub detail: String,
}

/// What one [`Fleet::roll`] did.
#[derive(Clone, Debug, Default)]
pub struct RollReport {
    /// Per-shard results, in roll order (shards the roll never reached
    /// are absent).
    pub shards: Vec<ShardRollReport>,
    /// Whether the coordinator rolled the fleet back to the old version.
    pub rolled_back: bool,
    /// Why, when it did.
    pub rollback_reason: Option<String>,
    /// Responses served while some shard's update was in flight.
    pub mid_roll_responses: u64,
    /// Requests submitted during the roll that never got a response.
    pub dropped: u64,
    /// Responses that failed verification during the roll.
    pub incorrect: u64,
    /// Every shard's defs-only registry fingerprint, collected after the
    /// roll settled; all-equal means the fleet converged on one version.
    pub fingerprints: Vec<String>,
    /// The typed controller event stream, tagged by shard.
    pub events: Vec<(usize, UpdateEvent)>,
}

impl RollReport {
    /// Whether every collected fingerprint is bit-identical.
    pub fn fingerprints_converged(&self) -> bool {
        self.fingerprints.windows(2).all(|w| w[0] == w[1])
    }
}

/// The coordinator: owns the shard threads, the acceptor's round-robin
/// cursor, and the roll state machine.
pub struct Fleet {
    app: Arc<dyn AppInstance>,
    base_classes: Arc<Vec<ClassFile>>,
    shards: Vec<ShardHandle>,
    rx: Receiver<ShardMsg>,
    next_shard: usize,
    next_seq: u64,
    submitted: u64,
    completed: u64,
    incorrect: u64,
    /// Event log + mid-roll counter, live only inside [`Fleet::roll`].
    roll_events: Vec<(usize, UpdateEvent)>,
    mid_roll_responses: u64,
    counting_mid_roll: bool,
}

impl Fleet {
    /// Boots `shards` VM shards, each serving `app` booted from
    /// `classes`, and waits until every shard listens.
    ///
    /// # Panics
    ///
    /// Panics if a shard thread cannot be spawned (boot failures panic on
    /// the shard thread and surface at the first exchange).
    pub fn boot(
        app: Arc<dyn AppInstance>,
        classes: Vec<ClassFile>,
        shards: usize,
        config: &VmConfig,
    ) -> Fleet {
        assert!(shards >= 1, "a fleet needs at least one shard");
        let base_classes = Arc::new(classes);
        let (msg_tx, msg_rx) = channel();
        let handles = (0..shards)
            .map(|i| {
                let (cmd_tx, cmd_rx) = channel();
                let app = Arc::clone(&app);
                let classes = Arc::clone(&base_classes);
                let config = config.clone();
                let tx = msg_tx.clone();
                let join = std::thread::Builder::new()
                    .name(format!("shard-{i}"))
                    .spawn(move || shard_main(i, app, classes, config, cmd_rx, tx))
                    .expect("spawn shard thread");
                ShardHandle { tx: cmd_tx, join: Some(join), serving: true }
            })
            .collect();
        Fleet {
            app,
            base_classes,
            shards: handles,
            rx: msg_rx,
            next_shard: 0,
            next_seq: 0,
            submitted: 0,
            completed: 0,
            incorrect: 0,
            roll_events: Vec::new(),
            mid_roll_responses: 0,
            counting_mid_roll: false,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The embedded application.
    pub fn app(&self) -> &dyn AppInstance {
        &*self.app
    }

    /// Submits one request to the next serving shard (round-robin).
    /// Returns `false` when no shard is accepting (mid-rollback).
    pub fn submit(&mut self) -> bool {
        let n = self.shards.len();
        for _ in 0..n {
            let i = self.next_shard % n;
            self.next_shard += 1;
            if self.shards[i].serving {
                let seq = self.next_seq;
                self.next_seq += 1;
                if self.shards[i].tx.send(ShardCmd::Exchange { seq }).is_ok() {
                    self.submitted += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Requests submitted but not yet answered.
    pub fn in_flight(&self) -> u64 {
        self.submitted - self.completed - self.incorrect
    }

    /// Handles one shard message against the global counters, returning
    /// it if it is *not* a plain response/event (i.e. something a wait
    /// loop is looking for).
    fn note(&mut self, msg: ShardMsg) -> Option<ShardMsg> {
        match msg {
            ShardMsg::Response { result } => {
                match result {
                    Ok(_) => self.completed += 1,
                    Err(_) => self.incorrect += 1,
                }
                if self.counting_mid_roll {
                    self.mid_roll_responses += 1;
                }
                None
            }
            ShardMsg::Event { shard, event } => {
                self.roll_events.push((shard, event));
                None
            }
            other => Some(other),
        }
    }

    /// Blocks until `pred` accepts a non-response message, pumping
    /// background load when `load` is set.
    ///
    /// # Panics
    ///
    /// Panics when a shard stays silent for [`HARD_WAIT`] (infrastructure
    /// bug) or sends a message no wait loop expects (protocol bug).
    fn wait_for<T>(
        &mut self,
        load: bool,
        mut pred: impl FnMut(&ShardMsg) -> Option<T>,
    ) -> T {
        let start = Instant::now();
        loop {
            if load {
                let cap = IN_FLIGHT_PER_SHARD
                    * self.shards.iter().filter(|s| s.serving).count() as u64;
                if self.in_flight() < cap {
                    self.submit();
                }
            }
            match self.rx.recv_timeout(RECV_TICK) {
                Ok(msg) => {
                    if let Some(msg) = self.note(msg) {
                        match pred(&msg) {
                            Some(t) => return t,
                            None => panic!("unexpected shard message mid-wait"),
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    assert!(
                        start.elapsed() < HARD_WAIT,
                        "fleet wait exceeded {HARD_WAIT:?}"
                    );
                }
                Err(RecvTimeoutError::Disconnected) => panic!("all shards gone"),
            }
        }
    }

    /// Blocks until every submitted request has a response.
    fn drain_responses(&mut self) {
        let start = Instant::now();
        while self.in_flight() > 0 {
            match self.rx.recv_timeout(RECV_TICK) {
                Ok(msg) => {
                    if self.note(msg).is_some() {
                        panic!("unexpected shard message while draining");
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    assert!(
                        start.elapsed() < HARD_WAIT,
                        "response drain exceeded {HARD_WAIT:?}"
                    );
                }
                Err(RecvTimeoutError::Disconnected) => panic!("all shards gone"),
            }
        }
    }

    /// Submits `requests` round-robin across the serving shards and waits
    /// for every response — the fleet's closed-batch load driver.
    pub fn run_requests(&mut self, requests: u64) -> LoadReport {
        let (c0, i0) = (self.completed, self.incorrect);
        let started = Instant::now();
        for _ in 0..requests {
            assert!(self.submit(), "no serving shard accepts requests");
        }
        self.drain_responses();
        LoadReport {
            completed: self.completed - c0,
            incorrect: self.incorrect - i0,
            wall: started.elapsed(),
        }
    }

    /// Every shard's defs-only registry fingerprint, in shard order.
    pub fn version_fingerprints(&mut self) -> Vec<String> {
        self.drain_responses();
        for s in &self.shards {
            s.tx.send(ShardCmd::Fingerprint).expect("shard alive");
        }
        let mut digests = vec![None; self.shards.len()];
        for _ in 0..self.shards.len() {
            let (shard, digest) = self.wait_for(false, |msg| match msg {
                ShardMsg::Fingerprint { shard, digest } => Some((*shard, digest.clone())),
                _ => None,
            });
            digests[shard] = Some(digest);
        }
        digests.into_iter().map(|d| d.expect("every shard reported")).collect()
    }

    /// Rolls `update` across the fleet shard-by-shard: drain, apply
    /// (each shard's own controller), health-gate via the event stream
    /// plus `probes_per_shard` verified probes, promote — or roll the
    /// fleet back to the old version on the first failure.
    pub fn roll(
        &mut self,
        update: &Update,
        opts: &ApplyOptions,
        ropts: &RollOptions,
    ) -> RollReport {
        let mut report = RollReport::default();
        self.roll_events.clear();
        self.mid_roll_responses = 0;
        let incorrect_before = self.incorrect;
        let update = Arc::new(update.clone());
        let mut promoted: Vec<usize> = Vec::new();

        'roll: for target in 0..self.shards.len() {
            // Drain: stop routing new requests to the target; everything
            // already queued is served before the update command arrives.
            self.shards[target].serving = false;
            let payload = match ropts.fault {
                Some(RollFault::InstallFailure { shard }) if shard == target => {
                    // An update whose transformers class does not compile:
                    // installation fails mid-flight and the shard's
                    // controller replays its rollback ledger.
                    let mut bad = (*update).clone();
                    bad.set_transformers_source("class JvolveTransformers { syntax error! }");
                    Arc::new(bad)
                }
                _ => Arc::clone(&update),
            };
            self.shards[target]
                .tx
                .send(ShardCmd::Update { update: payload, opts: Box::new(opts.clone()) })
                .expect("shard alive");

            self.counting_mid_roll = true;
            let outcome = self.wait_for(ropts.load_during_roll, |msg| match msg {
                ShardMsg::UpdateDone { shard, outcome } if *shard == target => {
                    Some(outcome.clone())
                }
                _ => None,
            });
            self.counting_mid_roll = false;

            let committed = outcome.supported();
            // Health gate half 1: the typed event stream must show a
            // commit and no abort for this shard.
            let saw_committed = self.roll_events.iter().any(|(s, e)| {
                *s == target && matches!(e, UpdateEvent::Committed { .. })
            });
            let saw_aborted = self.roll_events.iter().any(|(s, e)| {
                *s == target && matches!(e, UpdateEvent::Aborted { .. })
            });
            let stream_healthy = committed && saw_committed && !saw_aborted;

            // Health gate half 2: verified probe responses.
            let (mut probes_ok, mut probes_failed) = (0, 0);
            if stream_healthy {
                self.shards[target]
                    .tx
                    .send(ShardCmd::Probe { count: ropts.probes_per_shard })
                    .expect("shard alive");
                let (ok, failed) = self.wait_for(ropts.load_during_roll, |msg| match msg {
                    ShardMsg::ProbeDone { shard, ok, failed } if *shard == target => {
                        Some((*ok, *failed))
                    }
                    _ => None,
                });
                probes_ok = ok;
                probes_failed = failed;
            }
            let timed_out_health = matches!(
                ropts.fault,
                Some(RollFault::HealthTimeout { shard }) if shard == target
            );
            let healthy =
                stream_healthy && probes_failed == 0 && probes_ok > 0 && !timed_out_health;

            let detail = if timed_out_health {
                "health-check timeout (injected)".to_string()
            } else if healthy {
                format!("committed, {probes_ok} probes verified")
            } else {
                format!("{outcome}")
            };
            report.shards.push(ShardRollReport {
                shard: target,
                committed,
                probes_ok,
                probes_failed,
                healthy,
                detail: detail.clone(),
            });

            if healthy {
                self.shards[target].serving = true;
                promoted.push(target);
                continue;
            }

            // Fleet-wide rollback. The failing shard either rolled itself
            // back via its controller's ledger (install failure / abort)
            // or committed but flunked the health gate — the latter must
            // be redeployed to the old version alongside every
            // already-promoted shard.
            let mut to_redeploy = promoted.clone();
            if committed {
                to_redeploy.push(target);
            }
            for &s in &to_redeploy {
                self.shards[s].serving = false;
                self.shards[s]
                    .tx
                    .send(ShardCmd::Redeploy { classes: Arc::clone(&self.base_classes) })
                    .expect("shard alive");
            }
            for _ in 0..to_redeploy.len() {
                let shard = self.wait_for(false, |msg| match msg {
                    ShardMsg::Redeployed { shard } => Some(*shard),
                    _ => None,
                });
                self.shards[shard].serving = true;
            }
            self.shards[target].serving = true;
            report.rolled_back = true;
            report.rollback_reason = Some(format!("shard {target}: {detail}"));
            break 'roll;
        }

        // Settle: answer everything in flight, then fingerprint the fleet
        // to prove convergence (on the new version, or back on the old).
        self.drain_responses();
        report.fingerprints = self.version_fingerprints();
        report.mid_roll_responses = self.mid_roll_responses;
        report.dropped = self.in_flight();
        report.incorrect = self.incorrect - incorrect_before;
        report.events = std::mem::take(&mut self.roll_events);
        report
    }

    /// Stops every shard thread and joins them.
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    fn stop_all(&mut self) {
        for s in &self.shards {
            let _ = s.tx.send(ShardCmd::Stop);
        }
        for s in &mut self.shards {
            if let Some(join) = s.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.stop_all();
    }
}
