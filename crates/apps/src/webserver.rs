//! The `webserver` guest application — the reproduction's Jetty.
//!
//! Eleven releases, 5.1.0 through 5.1.10, whose release-to-release diffs
//! preserve the *kind* structure of the paper's Table 2:
//!
//! | update | classification | notes |
//! |---|---|---|
//! | 5.1.1  | method-body-only | E&C-supportable |
//! | 5.1.2  | class update | `MimeTypes` added, `Logger.log` signature change |
//! | 5.1.3  | class update, **unsupported** | `ThreadedServer.acceptLoop` (the paper's `acceptSocket`) and `PoolThread.run` change while always on stack |
//! | 5.1.4  | class update | `ServerConfig` fields deleted, `AccessLog.record` signature change; OSR needed for `main` |
//! | 5.1.5  | class update (largest) | fields + methods added across `Stats`/`Router`/`HttpResponse` |
//! | 5.1.6  | class update | `ServerConfig` field rework; OSR needed |
//! | 5.1.7  | class update | `FileStore` gains a response cache; OSR needed |
//! | 5.1.8–5.1.10 | method-body-only | E&C-supportable |
//!
//! The server accepts single-line `GET <path>` requests on port 8080 and
//! answers one line per request, dispatching connections to a fixed pool
//! of worker threads through a shared queue — the same always-running
//! accept-loop / worker-loop shape that makes the paper's 5.1.3 update
//! impossible to time.

use jvolve_vm::Vm;

use crate::common::{prefix_of, verify_replies, AppInstance, AppVersion, GuestApp, ProbeFailure};
use crate::workload::one_shot;

/// Port the webserver listens on.
pub const PORT: u16 = 8080;
/// Number of pool threads.
pub const WORKERS: usize = 4;

/// The webserver application.
#[derive(Debug, Clone, Copy, Default)]
pub struct Webserver;

impl AppInstance for Webserver {
    fn name(&self) -> &'static str {
        "webserver"
    }
    fn port(&self) -> u16 {
        PORT
    }
    fn main_class(&self) -> &'static str {
        "WebServer"
    }
    fn probe(&self, vm: &mut Vm, seq: u64, max_slices: usize) -> Result<String, ProbeFailure> {
        let paths = ["/index.html", "/about.html"];
        let path = paths[(seq as usize) % paths.len()];
        let reply = one_shot(vm, PORT, &format!("GET {path}"), max_slices).map(|(r, _)| vec![r]);
        verify_replies(reply, &[(0, "200")])
    }
}

impl GuestApp for Webserver {
    fn versions(&self) -> Vec<AppVersion> {
        (0..=10)
            .map(|v| {
                let label = LABELS[v];
                AppVersion {
                    label,
                    prefix: Box::leak(prefix_of(label).into_boxed_str()),
                    source: source(v),
                }
            })
            .collect()
    }
    fn expected_failures(&self) -> Vec<&'static str> {
        vec!["5.1.3"]
    }
}

const LABELS: [&str; 11] = [
    "5.1.0", "5.1.1", "5.1.2", "5.1.3", "5.1.4", "5.1.5", "5.1.6", "5.1.7", "5.1.8", "5.1.9",
    "5.1.10",
];

/// Full MJ source of version index `v` (0 = 5.1.0).
pub fn source(v: usize) -> String {
    assert!(v <= 10, "webserver has versions 0..=10");
    let mut src = String::new();
    src.push_str(&http_request(v));
    src.push_str(&http_response(v));
    src.push_str(&file_store(v));
    src.push_str(&stats(v));
    src.push_str(&router(v));
    src.push_str(&static_handler(v));
    if v >= 2 {
        src.push_str(&mime_types(v));
    }
    src.push_str(&logger(v));
    src.push_str(CONN_QUEUE);
    src.push_str(&http_connection(v));
    src.push_str(&pool_thread(v));
    src.push_str(&threaded_server(v));
    if v >= 3 {
        src.push_str(&server_config(v));
        src.push_str(&access_log(v));
        src.push_str(&request_filter(v));
    }
    src.push_str(&web_server_main(v));
    src
}

fn http_request(v: usize) -> String {
    let parse_body = match v {
        0..=4 => {
            "    var parts: String[] = Str.split(line, \" \");
    if (parts.length < 2) { return new HttpRequest(\"BAD\", \"/\"); }
    return new HttpRequest(parts[0], parts[1]);"
        }
        5..=9 => {
            "    var parts: String[] = Str.split(Str.trim(line), \" \");
    if (parts.length < 2) { return new HttpRequest(\"BAD\", \"/\"); }
    return new HttpRequest(parts[0], parts[1]);"
        }
        _ => {
            "    if (Str.len(line) == 0) { return new HttpRequest(\"BAD\", \"/\"); }
    var parts: String[] = Str.split(Str.trim(line), \" \");
    if (parts.length < 2) { return new HttpRequest(\"BAD\", \"/\"); }
    return new HttpRequest(parts[0], parts[1]);"
        }
    };
    format!(
        "class HttpRequest {{
  field verb: String;
  field path: String;
  ctor(v: String, p: String) {{ this.verb = v; this.path = p; }}
  static method parse(line: String): HttpRequest {{
{parse_body}
  }}
}}
"
    )
}

fn http_response(v: usize) -> String {
    let render_body = match v {
        0..=8 => "    return Str.fromInt(this.status) + \" \" + this.body;",
        _ => {
            "    if (this.body == null) { return Str.fromInt(this.status); }
    return Str.fromInt(this.status) + \" \" + this.body;"
        }
    };
    let size_method = if v >= 5 {
        "  method size(): int { return Str.len(this.body); }\n"
    } else {
        ""
    };
    format!(
        "class HttpResponse {{
  field status: int;
  field body: String;
  ctor(s: int, b: String) {{ this.status = s; this.body = b; }}
  method render(): String {{
{render_body}
  }}
{size_method}}}
"
    )
}

fn file_store(v: usize) -> String {
    let cache = if v >= 7 {
        "  static field cacheKeys: String[];
  static field cacheVals: String[];
  static field cacheCount: int;
  static field cacheHits: int;
  static method cacheGet(p: String): String {
    if (FileStore.cacheKeys == null) { return null; }
    var i: int = 0;
    while (i < FileStore.cacheCount) {
      if (FileStore.cacheKeys[i] == p) {
        FileStore.cacheHits = FileStore.cacheHits + 1;
        return FileStore.cacheVals[i];
      }
      i = i + 1;
    }
    return null;
  }
  static method cachePut(p: String, c: String): void {
    if (FileStore.cacheKeys == null) {
      FileStore.cacheKeys = new String[16];
      FileStore.cacheVals = new String[16];
      FileStore.cacheCount = 0;
    }
    if (FileStore.cacheCount < 16) {
      FileStore.cacheKeys[FileStore.cacheCount] = p;
      FileStore.cacheVals[FileStore.cacheCount] = c;
      FileStore.cacheCount = FileStore.cacheCount + 1;
    }
  }
"
    } else {
        ""
    };
    let lookup_body = match v {
        0 => {
            "    var i: int = 0;
    while (i < FileStore.count) {
      if (FileStore.paths[i] == p) { return FileStore.contents[i]; }
      i = i + 1;
    }
    return null;"
        }
        1..=6 => {
            "    var key: String = Str.trim(p);
    var i: int = 0;
    while (i < FileStore.count) {
      if (FileStore.paths[i] == key) { return FileStore.contents[i]; }
      i = i + 1;
    }
    return null;"
        }
        _ => {
            "    var key: String = Str.trim(p);
    var cached: String = FileStore.cacheGet(key);
    if (cached != null) { return cached; }
    var i: int = 0;
    while (i < FileStore.count) {
      if (FileStore.paths[i] == key) {
        FileStore.cachePut(key, FileStore.contents[i]);
        return FileStore.contents[i];
      }
      i = i + 1;
    }
    return null;"
        }
    };
    format!(
        "class FileStore {{
  static field paths: String[];
  static field contents: String[];
  static field count: int;
{cache}  static method init(): void {{
    FileStore.paths = new String[8];
    FileStore.contents = new String[8];
    FileStore.count = 0;
    FileStore.put(\"/index.html\", \"<html>welcome</html>\");
    FileStore.put(\"/about.html\", \"<html>about us</html>\");
    FileStore.put(\"/data.json\", \"ok:true\");
  }}
  static method put(p: String, c: String): void {{
    FileStore.paths[FileStore.count] = p;
    FileStore.contents[FileStore.count] = c;
    FileStore.count = FileStore.count + 1;
  }}
  static method lookup(p: String): String {{
{lookup_body}
  }}
}}
"
    )
}

fn stats(v: usize) -> String {
    let bump_body = match v {
        0 => "    Stats.requests = Stats.requests + 1;",
        _ => {
            "    if (Stats.requests < 1000000000) { Stats.requests = Stats.requests + 1; }"
        }
    };
    let extra_fields = if v >= 5 {
        "  static field bytesServed: int;
  static field notFound: int;
"
    } else {
        ""
    };
    let extra_methods = if v >= 5 {
        "  static method bumpBytes(n: int): void { Stats.bytesServed = Stats.bytesServed + n; }
  static method bumpNotFound(): void { Stats.notFound = Stats.notFound + 1; }
"
    } else {
        ""
    };
    let report_body = match v {
        0..=4 => {
            "    return \"requests=\" + Str.fromInt(Stats.requests) + \" errors=\" + Str.fromInt(Stats.errors);"
        }
        5..=7 => {
            "    return \"requests=\" + Str.fromInt(Stats.requests) + \" errors=\" + Str.fromInt(Stats.errors) + \" bytes=\" + Str.fromInt(Stats.bytesServed);"
        }
        _ => {
            "    return \"requests=\" + Str.fromInt(Stats.requests) + \" errors=\" + Str.fromInt(Stats.errors) + \" bytes=\" + Str.fromInt(Stats.bytesServed) + \" notFound=\" + Str.fromInt(Stats.notFound);"
        }
    };
    format!(
        "class Stats {{
  static field requests: int;
  static field errors: int;
{extra_fields}  static method bumpRequest(): void {{
{bump_body}
  }}
  static method bumpError(): void {{ Stats.errors = Stats.errors + 1; }}
{extra_methods}  static method report(): String {{
{report_body}
  }}
}}
"
    )
}

fn router(v: usize) -> String {
    let not_found = if v >= 5 {
        "  static method notFound(path: String): HttpResponse {
    Stats.bumpNotFound();
    return new HttpResponse(404, path);
  }
"
    } else {
        ""
    };
    let route_body = match v {
        0 => {
            "    var content: String = StaticHandler.handle(req);
    if (content == null) { Stats.bumpError(); return new HttpResponse(404, req.path); }
    return new HttpResponse(200, content);"
        }
        1..=4 => {
            "    var content: String = StaticHandler.handle(req);
    if (content == null) {
      Stats.bumpError();
      return new HttpResponse(404, req.path);
    }
    if (req.verb == \"BAD\") { return new HttpResponse(400, req.path); }
    return new HttpResponse(200, content);"
        }
        5..=9 => {
            "    if (req.verb == \"BAD\") { return new HttpResponse(400, req.path); }
    var content: String = StaticHandler.handle(req);
    if (content == null) { Stats.bumpError(); return Router.notFound(req.path); }
    return new HttpResponse(200, content);"
        }
        _ => {
            "    if (req.verb == \"BAD\") { return new HttpResponse(400, req.path); }
    if (req.path == null) { return new HttpResponse(400, \"null\"); }
    var content: String = StaticHandler.handle(req);
    if (content == null) { Stats.bumpError(); return Router.notFound(req.path); }
    return new HttpResponse(200, content);"
        }
    };
    format!(
        "class Router {{
{not_found}  static method route(req: HttpRequest): HttpResponse {{
{route_body}
  }}
}}
"
    )
}

fn static_handler(v: usize) -> String {
    let body = match v {
        0..=4 => {
            "    if (req.verb == \"GET\") { return FileStore.lookup(req.path); }
    return null;"
        }
        5..=9 => {
            "    if (req.verb == \"GET\") { return FileStore.lookup(req.path); }
    if (req.verb == \"HEAD\") {
      var found: String = FileStore.lookup(req.path);
      if (found != null) { return \"\"; }
    }
    return null;"
        }
        _ => {
            "    if (req.verb == \"GET\" || req.verb == \"HEAD\") {
      var found: String = FileStore.lookup(req.path);
      if (found == null) { return null; }
      if (req.verb == \"HEAD\") { return \"\"; }
      return found;
    }
    return null;"
        }
    };
    format!(
        "class StaticHandler {{
  static method handle(req: HttpRequest): String {{
{body}
  }}
}}
"
    )
}

fn mime_types(v: usize) -> String {
    let body = match v {
        2..=4 => {
            "    if (Str.contains(p, \".html\")) { return \"text/html\"; }
    if (Str.contains(p, \".json\")) { return \"application/json\"; }
    return \"text/plain\";"
        }
        _ => {
            "    if (Str.contains(p, \".html\")) { return \"text/html\"; }
    if (Str.contains(p, \".json\")) { return \"application/json\"; }
    if (Str.contains(p, \".txt\")) { return \"text/plain\"; }
    return \"application/octet-stream\";"
        }
    };
    format!(
        "class MimeTypes {{
  static method guess(p: String): String {{
{body}
  }}
}}
"
    )
}

fn logger(v: usize) -> String {
    match v {
        0..=1 => "class Logger {
  static field enabled: int;
  static method log(msg: String): void {
    if (Logger.enabled > 0) { Sys.print(msg); }
  }
}
"
        .to_string(),
        2..=5 => "class Logger {
  static field enabled: int;
  static method log(msg: String, level: int): void {
    if (Logger.enabled >= level) { Sys.print(msg); }
  }
}
"
        .to_string(),
        _ => "class Logger {
  static field enabled: int;
  static method log(msg: String, level: int): void {
    if (Logger.enabled >= level && ServerConfig.logLevel >= level) { Sys.print(msg); }
  }
}
"
        .to_string(),
    }
}

/// Stable across every release: the worker queue the always-running loops
/// depend on (so those loops are never restricted by accident).
const CONN_QUEUE: &str = "class ConnQueue {
  static field items: int[];
  static field head: int;
  static field tail: int;
  static field size: int;
  static field cap: int;
  static method init(c: int): void {
    ConnQueue.items = new int[c];
    ConnQueue.cap = c;
    ConnQueue.head = 0;
    ConnQueue.tail = 0;
    ConnQueue.size = 0;
  }
  static method push(conn: int): bool {
    if (ConnQueue.size >= ConnQueue.cap) { return false; }
    ConnQueue.items[ConnQueue.tail] = conn;
    ConnQueue.tail = (ConnQueue.tail + 1) % ConnQueue.cap;
    ConnQueue.size = ConnQueue.size + 1;
    return true;
  }
  static method pop(): int {
    if (ConnQueue.size == 0) { return -1; }
    var conn: int = ConnQueue.items[ConnQueue.head];
    ConnQueue.head = (ConnQueue.head + 1) % ConnQueue.cap;
    ConnQueue.size = ConnQueue.size - 1;
    return conn;
  }
}
";

fn http_connection(v: usize) -> String {
    let body = match v {
        0 => {
            "    var line: String = Net.readLine(conn);
    if (line == null) { Net.close(conn); return; }
    var req: HttpRequest = HttpRequest.parse(line);
    Stats.bumpRequest();
    var resp: HttpResponse = Router.route(req);
    Net.write(conn, resp.render());
    Net.close(conn);"
        }
        1 => {
            "    var line: String = Net.readLine(conn);
    if (line == null) { Net.close(conn); return; }
    if (Str.len(line) == 0) { Net.close(conn); return; }
    var req: HttpRequest = HttpRequest.parse(line);
    Stats.bumpRequest();
    var resp: HttpResponse = Router.route(req);
    Net.write(conn, resp.render());
    Net.close(conn);"
        }
        2 => {
            "    var line: String = Net.readLine(conn);
    if (line == null) { Net.close(conn); return; }
    if (Str.len(line) == 0) { Net.close(conn); return; }
    var req: HttpRequest = HttpRequest.parse(line);
    Logger.log(req.path, 2);
    Stats.bumpRequest();
    var resp: HttpResponse = Router.route(req);
    Net.write(conn, resp.render());
    Net.close(conn);"
        }
        3 => {
            "    var line: String = Net.readLine(conn);
    if (line == null) { Net.close(conn); return; }
    if (Str.len(line) == 0) { Net.close(conn); return; }
    var req: HttpRequest = HttpRequest.parse(line);
    if (!RequestFilter.allowed(req.path)) {
      Net.write(conn, \"403 forbidden\");
      Net.close(conn);
      return;
    }
    AccessLog.record(req.path);
    Logger.log(req.path, 2);
    Stats.bumpRequest();
    var resp: HttpResponse = Router.route(req);
    Net.write(conn, resp.render());
    Net.close(conn);"
        }
        4 => {
            "    var line: String = Net.readLine(conn);
    if (line == null) { Net.close(conn); return; }
    if (Str.len(line) == 0) { Net.close(conn); return; }
    var req: HttpRequest = HttpRequest.parse(line);
    if (!RequestFilter.allowed(req.path)) {
      Net.write(conn, \"403 forbidden\");
      Net.close(conn);
      return;
    }
    Logger.log(req.path, 2);
    Stats.bumpRequest();
    var resp: HttpResponse = Router.route(req);
    AccessLog.record(req.path, resp.status);
    Net.write(conn, resp.render());
    Net.close(conn);"
        }
        5..=9 => {
            "    var line: String = Net.readLine(conn);
    if (line == null) { Net.close(conn); return; }
    if (Str.len(line) == 0) { Net.close(conn); return; }
    var req: HttpRequest = HttpRequest.parse(line);
    if (!RequestFilter.allowed(req.path)) {
      Net.write(conn, \"403 forbidden\");
      Net.close(conn);
      return;
    }
    Logger.log(req.path, 2);
    Stats.bumpRequest();
    var resp: HttpResponse = Router.route(req);
    Stats.bumpBytes(resp.size());
    AccessLog.record(req.path, resp.status);
    Net.write(conn, resp.render());
    Net.close(conn);"
        }
        _ => {
            "    var line: String = Net.readLine(conn);
    if (line == null) { Net.close(conn); return; }
    var trimmed: String = Str.trim(line);
    if (Str.len(trimmed) == 0) { Net.close(conn); return; }
    var req: HttpRequest = HttpRequest.parse(trimmed);
    if (!RequestFilter.allowed(req.path)) {
      Net.write(conn, \"403 forbidden\");
      Net.close(conn);
      return;
    }
    Logger.log(req.path, 2);
    Stats.bumpRequest();
    var resp: HttpResponse = Router.route(req);
    Stats.bumpBytes(resp.size());
    AccessLog.record(req.path, resp.status);
    Net.write(conn, resp.render());
    Net.close(conn);"
        }
    };
    format!(
        "class HttpConnection {{
  static method process(conn: int): void {{
{body}
  }}
}}
"
    )
}

fn pool_thread(v: usize) -> String {
    let (static_field, run_body) = if v >= 3 {
        (
            "  static field handled: int;\n",
            "    while (true) {
      var conn: int = ConnQueue.pop();
      if (conn < 0) { Sys.yieldNow(); } else {
        HttpConnection.process(conn);
        PoolThread.handled = PoolThread.handled + 1;
      }
    }",
        )
    } else {
        (
            "",
            "    while (true) {
      var conn: int = ConnQueue.pop();
      if (conn < 0) { Sys.yieldNow(); } else { HttpConnection.process(conn); }
    }",
        )
    };
    format!(
        "class PoolThread {{
{static_field}  field id: int;
  ctor(id: int) {{ this.id = id; }}
  method run(): void {{
{run_body}
  }}
}}
"
    )
}

fn threaded_server(v: usize) -> String {
    let (static_field, accept_body) = if v >= 3 {
        (
            "  static field accepted: int;\n",
            "    while (true) {
      var conn: int = Net.accept(listener);
      ThreadedServer.accepted = ThreadedServer.accepted + 1;
      var ok: bool = ConnQueue.push(conn);
      if (!ok) { Net.close(conn); }
    }",
        )
    } else {
        (
            "",
            "    while (true) {
      var conn: int = Net.accept(listener);
      var ok: bool = ConnQueue.push(conn);
      if (!ok) { Net.close(conn); }
    }",
        )
    };
    format!(
        "class ThreadedServer {{
{static_field}  static method acceptLoop(listener: int): void {{
{accept_body}
  }}
  static method start(port: int, workers: int): void {{
    var l: int = Net.listen(port);
    var i: int = 0;
    while (i < workers) {{ Sys.spawn(new PoolThread(i)); i = i + 1; }}
    ThreadedServer.acceptLoop(l);
  }}
}}
"
    )
}

fn server_config(v: usize) -> String {
    match v {
        3 => "class ServerConfig {
  static field port: int;
  static field workers: int;
  static field maxConns: int;
  static field banner: String;
  static field debug: int;
  static method initDefaults(): void {
    ServerConfig.port = 8080;
    ServerConfig.workers = 4;
    ServerConfig.maxConns = 64;
    ServerConfig.banner = \"webserver 5.1.3\";
    ServerConfig.debug = 0;
  }
}
"
        .to_string(),
        4..=5 => "class ServerConfig {
  static field port: int;
  static field workers: int;
  static field debug: int;
  static method initDefaults(): void {
    ServerConfig.port = 8080;
    ServerConfig.workers = 4;
    ServerConfig.debug = 0;
  }
}
"
        .to_string(),
        _ => "class ServerConfig {
  static field port: int;
  static field workers: int;
  static field timeoutMs: int;
  static field logLevel: int;
  static method initDefaults(): void {
    ServerConfig.port = 8080;
    ServerConfig.workers = 4;
    ServerConfig.timeoutMs = 5000;
    ServerConfig.logLevel = 0;
  }
}
"
        .to_string(),
    }
}

fn access_log(v: usize) -> String {
    match v {
        3 => "class AccessLog {
  static field entries: int;
  static method record(path: String): void {
    AccessLog.entries = AccessLog.entries + 1;
    Logger.log(path, 3);
  }
}
"
        .to_string(),
        _ => "class AccessLog {
  static field entries: int;
  static method record(path: String, status: int): void {
    AccessLog.entries = AccessLog.entries + 1;
    if (status >= 400) { Logger.log(path, 1); } else { Logger.log(path, 3); }
  }
}
"
        .to_string(),
    }
}

fn request_filter(v: usize) -> String {
    match v {
        3 => "class RequestFilter {
  static method allowAll(): bool { return true; }
  static method allowed(path: String): bool { return !Str.contains(path, \"..\"); }
}
"
        .to_string(),
        _ => "class RequestFilter {
  static method allowed(path: String): bool { return !Str.contains(path, \"..\"); }
}
"
        .to_string(),
    }
}

fn web_server_main(v: usize) -> String {
    let body = if v >= 3 {
        "    FileStore.init();
    ConnQueue.init(64);
    ServerConfig.initDefaults();
    ThreadedServer.start(ServerConfig.port, ServerConfig.workers);"
    } else {
        "    FileStore.init();
    ConnQueue.init(64);
    ThreadedServer.start(8080, 4);"
    };
    format!(
        "class WebServer {{
  static method main(): void {{
{body}
  }}
}}
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::GuestApp;

    #[test]
    fn every_version_compiles() {
        for v in Webserver.versions() {
            v.compile();
        }
    }

    #[test]
    fn consecutive_versions_differ() {
        let versions = Webserver.versions();
        for w in versions.windows(2) {
            assert_ne!(w[0].source, w[1].source, "{} vs {}", w[0].label, w[1].label);
        }
    }

    #[test]
    fn labels_and_prefixes() {
        let versions = Webserver.versions();
        assert_eq!(versions.len(), 11);
        assert_eq!(versions[0].label, "5.1.0");
        assert_eq!(versions[3].prefix, "v513_");
    }
}
