//! UPT equivalence oracle: a release prepared automatically by the UPT
//! must be semantically identical to the hand-authored preparation path
//! the harness has always used (`Update::prepare` plus, for the paper's
//! Figure 3 case, the developer's custom `User` transformer) — both
//! statically (same spec, same restricted set, same transformer source)
//! and dynamically (bit-identical post-commit heap and registry
//! fingerprints when the two updates are applied to identically driven
//! VMs).

use jvolve::restricted::RestrictedSet;
use jvolve::Update;
use jvolve_apps::harness::{apply_prepared_interleaved, bench_apply_options, boot, prepare_next};
use jvolve_apps::{Emailserver, Ftpserver, GuestApp, Kvstore, Webserver};
use jvolve_upt::{prepare_classes, prepare_files, UptOptions};

/// The UPT side of the oracle: prepare `from -> from + 1` of `app`
/// automatically, supplying the Figure 3 customization as a *per-class*
/// override (rather than a whole replacement source) for emailserver
/// 1.3.2.
fn upt_prepare(app: &dyn GuestApp, from: usize) -> Update {
    let versions = app.versions();
    let old = versions[from].compile();
    let new = versions[from + 1].compile();
    let mut opts = UptOptions::with_prefix(versions[from + 1].prefix);
    if app.name() == "emailserver" && versions[from + 1].label == "1.3.2" {
        opts.overrides.insert(
            "User".to_string(),
            jvolve_apps::emailserver::FIGURE3_USER_METHODS.to_string(),
        );
    }
    prepare_classes(&old, &new, &opts)
        .unwrap_or_else(|e| panic!("{}: UPT preparation of {from}->{} failed: {e}", app.name(), from + 1))
        .update
}

fn assert_statically_equivalent(app: &dyn GuestApp, from: usize) {
    let versions = app.versions();
    let label = format!("{} update to {}", app.name(), versions[from + 1].label);
    let hand = prepare_next(app, from);
    let upt = upt_prepare(app, from);

    assert_eq!(hand.spec, upt.spec, "{label}: specs differ");
    assert_eq!(
        hand.transformers_source, upt.transformers_source,
        "{label}: transformer sources differ"
    );
    let hand_rs = RestrictedSet::compute(&hand.spec, &hand.old_classes, &hand.blacklist);
    let upt_rs = RestrictedSet::compute(&upt.spec, &upt.old_classes, &upt.blacklist);
    assert_eq!(hand_rs.changed, upt_rs.changed, "{label}: category-1 sets differ");
    assert_eq!(hand_rs.indirect, upt_rs.indirect, "{label}: category-2 sets differ");
    assert_eq!(hand_rs.blacklisted, upt_rs.blacklisted, "{label}: category-3 sets differ");
}

#[test]
fn upt_matches_hand_preparation_for_every_guest_app_pair() {
    let apps: [&dyn GuestApp; 4] = [&Webserver, &Emailserver, &Ftpserver, &Kvstore];
    for app in apps {
        for from in 0..app.versions().len() - 1 {
            assert_statically_equivalent(app, from);
        }
    }
}

#[test]
fn upt_matches_hand_preparation_for_the_list_example() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/mj");
    let old_path = dir.join("list_v1.mj");
    let new_path = dir.join("list_v2.mj");

    let compile = |p: &std::path::Path| {
        jvolve_lang::compile(&std::fs::read_to_string(p).expect("read example"))
            .expect("example compiles")
    };
    let hand = Update::prepare(&compile(&old_path), &compile(&new_path), "v2_")
        .expect("hand preparation of the list example");

    let upt = prepare_files(&old_path, &new_path, &UptOptions::with_prefix("v2_"))
        .expect("UPT preparation of the list example")
        .update;

    assert_eq!(hand.spec, upt.spec, "list example: specs differ");
    assert_eq!(
        hand.transformers_source, upt.transformers_source,
        "list example: transformer sources differ"
    );
}

/// Applies `update` to a freshly booted `app` VM under a fixed probe
/// script and returns the post-commit (heap, registry) fingerprints.
fn fingerprints_after(app: &dyn GuestApp, from: usize, update: &Update) -> (u64, String) {
    let mut vm = boot(app, from);
    for seq in 0..3 {
        app.probe(&mut vm, seq, 20_000)
            .unwrap_or_else(|e| panic!("{}: probe before update failed: {e:?}", app.name()));
    }
    let (outcome, _) =
        apply_prepared_interleaved(&mut vm, update, &bench_apply_options(), None, |_| {});
    assert!(outcome.supported(), "{}: update {from}->{} failed: {outcome}", app.name(), from + 1);
    for seq in 3..6 {
        app.probe(&mut vm, seq, 20_000)
            .unwrap_or_else(|e| panic!("{}: probe after update failed: {e:?}", app.name()));
    }
    (vm.heap_fingerprint(), vm.registry().version_fingerprint())
}

#[test]
fn upt_prepared_updates_commit_to_bit_identical_state() {
    // One body-only kvstore edit, one kvstore class update whose indirect
    // closure forces OSR of `main`, and the emailserver Figure 3 release
    // prepared via the per-class override. Both sides of each pair run
    // the exact same workload, so the fingerprints must match bit for
    // bit.
    let cases: [(&dyn GuestApp, usize); 3] = [(&Kvstore, 0), (&Kvstore, 4), (&Emailserver, 5)];
    for (app, from) in cases {
        let hand = fingerprints_after(app, from, &prepare_next(app, from));
        let upt = fingerprints_after(app, from, &upt_prepare(app, from));
        assert_eq!(
            hand, upt,
            "{}: {from}->{}: hand-prepared and UPT-prepared commits diverge",
            app.name(),
            from + 1
        );
    }
}
