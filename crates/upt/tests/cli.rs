//! Integration tests for the `upt_run` command-line tool.

use std::process::Command;

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("jvolve-upt-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = temp_dir().join(name);
    std::fs::write(&path, content).unwrap();
    path
}

const V1: &str = "class Counter {
  static field n: int;
  static method main(): void {
    var i: int = 0;
    while (i < 3) { Counter.n = Counter.n + 1; Sys.printInt(Counter.n); i = i + 1; }
  }
}";

const V2: &str = "class Counter {
  static field n: int;
  static field audit: int;
  static method main(): void {
    var i: int = 0;
    while (i < 3) { Counter.n = Counter.n + 1; Sys.printInt(Counter.n); i = i + 1; }
  }
}";

#[test]
fn upt_run_diffs_and_writes_artifacts() {
    let old = write_temp("v1.mj", V1);
    let new = write_temp("v2.mj", V2);
    let spec = write_temp("spec.json", "");
    let tf = write_temp("transformers.mj", "");

    let out = Command::new(env!("CARGO_BIN_EXE_upt_run"))
        .args([
            "--old",
            old.to_str().unwrap(),
            "--new",
            new.to_str().unwrap(),
            "--prefix",
            "vX_",
            "--spec",
            spec.to_str().unwrap(),
            "--transformers",
            tf.to_str().unwrap(),
        ])
        .output()
        .expect("upt_run runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("Counter: ClassUpdate"), "{stdout}");
    assert!(stdout.contains("E&C) systems could apply this update: no"), "{stdout}");
    assert!(stdout.contains("restricted methods:"), "{stdout}");

    let spec_json = std::fs::read_to_string(&spec).unwrap();
    let parsed = jvolve::UpdateSpec::from_json(&spec_json).expect("valid spec file");
    assert_eq!(parsed.version_prefix, "vX_");
    let tf_src = std::fs::read_to_string(&tf).unwrap();
    assert!(tf_src.contains("jvolve_object_Counter"), "{tf_src}");
    assert!(tf_src.contains("Counter.n = vX_Counter.n;"), "{tf_src}");
}

#[test]
fn upt_run_emits_a_loadable_bundle() {
    let old = write_temp("b_v1.mj", V1);
    let new = write_temp("b_v2.mj", V2);
    let bundle = temp_dir().join("bundle");
    let _ = std::fs::remove_dir_all(&bundle);

    let out = Command::new(env!("CARGO_BIN_EXE_upt_run"))
        .args([
            "--old",
            old.to_str().unwrap(),
            "--new",
            new.to_str().unwrap(),
            "--prefix",
            "vB_",
            "--emit",
            bundle.to_str().unwrap(),
        ])
        .output()
        .expect("upt_run runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let update = jvolve_upt::load_bundle(&bundle).expect("bundle loads and re-verifies");
    assert_eq!(update.spec.version_prefix, "vB_");
    assert!(update.transformers_source.contains("jvolve_object_Counter"));
}

#[test]
fn upt_run_applies_per_class_overrides() {
    let old = write_temp("o_v1.mj", V1);
    let new = write_temp("o_v2.mj", V2);
    let ovr = write_temp(
        "counter_override.mj",
        "  static method jvolve_class_Counter(): void {
         Counter.n = vO_Counter.n;
         Counter.audit = 42;
       }
       static method jvolve_object_Counter(to: Counter, from: vO_Counter): void { }\n",
    );
    let tf = write_temp("o_transformers.mj", "");

    let out = Command::new(env!("CARGO_BIN_EXE_upt_run"))
        .args([
            "--old",
            old.to_str().unwrap(),
            "--new",
            new.to_str().unwrap(),
            "--prefix",
            "vO_",
            "--override",
            &format!("Counter={}", ovr.to_str().unwrap()),
            "--transformers",
            tf.to_str().unwrap(),
        ])
        .output()
        .expect("upt_run runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("transformer overrides applied: Counter"), "{stdout}");
    let tf_src = std::fs::read_to_string(&tf).unwrap();
    assert!(tf_src.contains("Counter.audit = 42;"), "{tf_src}");
}

#[test]
fn upt_run_semantic_failures_exit_1() {
    // Identical versions: nothing to update.
    let old = write_temp("same1.mj", V1);
    let new = write_temp("same2.mj", V1);
    let out = Command::new(env!("CARGO_BIN_EXE_upt_run"))
        .args(["--old", old.to_str().unwrap(), "--new", new.to_str().unwrap()])
        .output()
        .expect("upt_run runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("changes nothing"));

    // An override for a class without a class update is rejected.
    let new2 = write_temp("sem_v2.mj", V2);
    let ovr = write_temp("ghost.mj", "  // nothing\n");
    let out = Command::new(env!("CARGO_BIN_EXE_upt_run"))
        .args([
            "--old",
            old.to_str().unwrap(),
            "--new",
            new2.to_str().unwrap(),
            "--override",
            &format!("Ghost={}", ovr.to_str().unwrap()),
        ])
        .output()
        .expect("upt_run runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("Ghost has no class update"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A syntactically broken override fails preparation, not mid-update.
    let broken = write_temp("broken.mj", "  static method jvolve_object_Counter(\n");
    let out = Command::new(env!("CARGO_BIN_EXE_upt_run"))
        .args([
            "--old",
            old.to_str().unwrap(),
            "--new",
            new2.to_str().unwrap(),
            "--override",
            &format!("Counter={}", broken.to_str().unwrap()),
        ])
        .output()
        .expect("upt_run runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad transformers"));

    // Unreadable inputs are reported, not panicked on.
    let out = Command::new(env!("CARGO_BIN_EXE_upt_run"))
        .args(["--old", "/nonexistent/v1.mj", "--new", new2.to_str().unwrap()])
        .output()
        .expect("upt_run runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("/nonexistent/v1.mj"));
}

#[test]
fn upt_run_rejects_malformed_command_lines() {
    let old = write_temp("strict_v1.mj", V1);
    let new = write_temp("strict_v2.mj", V2);
    let (old, new) = (old.to_str().unwrap(), new.to_str().unwrap());

    // (args, expected stderr needle) — every case must exit 2 and print
    // the usage line.
    let cases: &[(&[&str], &str)] = &[
        (&[], "--old is required"),
        (&["--old", old], "--new is required"),
        (&["--old", old, "--new", new, "--turbo"], "unknown flag --turbo"),
        (&["--old", old, "--new", new, "--prefix"], "--prefix needs a value"),
        (&["--old", old, "--old", old, "--new", new], "duplicate flag --old"),
        (&["--old", old, "--new", new, "--prefix", "--emit"], "--prefix needs a value, got flag"),
        (&["--old", old, "--new", new, "stray.mj"], "unexpected argument stray.mj"),
        (&["--old", old, "--new", new, "--override", "Counter"], "--override needs Class=file.mj"),
        (&["--old", old, "--new", new, "--override", "=x.mj"], "--override needs Class=file.mj"),
        (
            &["--old", old, "--new", new, "--override", "A=a.mj", "--override", "A=b.mj"],
            "duplicate --override for class A",
        ),
    ];
    for (args, needle) in cases {
        let out = Command::new(env!("CARGO_BIN_EXE_upt_run"))
            .args(*args)
            .output()
            .expect("upt_run runs");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {stderr}");
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
        assert!(stderr.contains("usage:"), "{args:?}: {stderr}");
    }
}
