//! `upt_run` — the Update Preparation Tool CLI (paper §3.1 / Figure 1).
//!
//! ```text
//! upt_run --old <old.mj> --new <new.mj> [--prefix vN_]
//!         [--override Class=methods.mj]... [--emit bundle_dir/]
//!         [--spec out.json] [--transformers out.mj]
//! ```
//!
//! Diffs the two program versions through the controller's own
//! classifier, prints the per-release summary row, the per-class change
//! classification, the indirect-method closure, and the restricted-set
//! size, and optionally writes:
//!
//! * `--spec` — the update specification as JSON;
//! * `--transformers` — the merged `JvolveTransformers` MJ source
//!   (generated defaults with `--override` substitutions applied);
//! * `--emit` — a complete on-disk update bundle (spec + transformers +
//!   encoded class payloads) that `jvolve_run --update-bundle` and
//!   `fleet_run --update-bundle` apply directly.
//!
//! `--override Class=file.mj` replaces the generated transformer pair for
//! exactly that class with the file's contents (a class-body-level
//! `jvolve_class_X`/`jvolve_object_X` method pair); it may repeat for
//! different classes. The merged source is compiled and shape-checked
//! before anything is written, so a broken override fails here, not
//! mid-update.
//!
//! Unknown flags, missing or malformed values, duplicate flags (including
//! a repeated `--override` class), and a malformed `Class=file` form are
//! rejected with the usage message and exit code 2. Semantic failures
//! (unreadable files, compile errors, an override naming a class without
//! a class update, identical versions) exit 1.

use std::path::Path;
use std::process::ExitCode;

use jvolve_upt::{emit_bundle, prepare_files, UptOptions};

const USAGE: &str = "usage: upt_run --old <old.mj> --new <new.mj> [--prefix vN_] \
     [--override Class=methods.mj]... [--emit bundle_dir/] \
     [--spec out.json] [--transformers out.mj]";

/// Parsed command line. Every flag is strict: unknown names, missing or
/// malformed values, duplicates, and malformed overrides are parse errors.
struct Cli {
    old: String,
    new: String,
    prefix: String,
    /// `(class, file)` pairs, in order, classes deduplicated.
    overrides: Vec<(String, String)>,
    emit: Option<String>,
    spec: Option<String>,
    transformers: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut values: [(&str, Option<String>); 6] = [
        ("--old", None),
        ("--new", None),
        ("--prefix", None),
        ("--emit", None),
        ("--spec", None),
        ("--transformers", None),
    ];
    let mut overrides: Vec<(String, String)> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--override" => {
                let v = args.get(i + 1).ok_or_else(|| format!("{arg} needs a value"))?;
                if v.starts_with("--") {
                    return Err(format!("{arg} needs a value, got flag {v}"));
                }
                let (class, file) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--override needs Class=file.mj, got {v}"))?;
                if class.is_empty() || file.is_empty() {
                    return Err(format!("--override needs Class=file.mj, got {v}"));
                }
                if overrides.iter().any(|(c, _)| c == class) {
                    return Err(format!("duplicate --override for class {class}"));
                }
                overrides.push((class.to_string(), file.to_string()));
                i += 2;
            }
            _ if arg.starts_with("--") => {
                let slot = values
                    .iter_mut()
                    .find(|(name, _)| *name == arg)
                    .map(|(_, slot)| slot)
                    .ok_or_else(|| format!("unknown flag {arg}"))?;
                if slot.is_some() {
                    return Err(format!("duplicate flag {arg}"));
                }
                let v = args.get(i + 1).ok_or_else(|| format!("{arg} needs a value"))?;
                if v.starts_with("--") {
                    return Err(format!("{arg} needs a value, got flag {v}"));
                }
                *slot = Some(v.clone());
                i += 2;
            }
            _ => return Err(format!("unexpected argument {arg}")),
        }
    }

    let mut take = |name: &str| {
        values.iter_mut().find(|(n, _)| *n == name).and_then(|(_, slot)| slot.take())
    };
    Ok(Cli {
        old: take("--old").ok_or("--old is required")?,
        new: take("--new").ok_or("--new is required")?,
        prefix: take("--prefix").unwrap_or_else(|| "v1_".to_string()),
        overrides,
        emit: take("--emit"),
        spec: take("--spec"),
        transformers: take("--transformers"),
    })
}

fn run(cli: &Cli) -> Result<(), String> {
    let mut opts = UptOptions::with_prefix(cli.prefix.clone());
    for (class, file) in &cli.overrides {
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read override {file}: {e}"))?;
        opts.overrides.insert(class.clone(), source);
    }

    let release = prepare_files(Path::new(&cli.old), Path::new(&cli.new), &opts)
        .map_err(|e| e.to_string())?;

    let summary = release.summary();
    println!("{}", jvolve::ReleaseSummary::table_header());
    println!("{summary}");
    print!("{}", release.classification());
    if !release.overridden.is_empty() {
        let names: Vec<&str> = release.overridden.iter().map(|c| c.as_str()).collect();
        println!("transformer overrides applied: {}", names.join(", "));
    }

    if let Some(path) = &cli.spec {
        std::fs::write(path, release.update.spec.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote spec to {path}");
    }
    if let Some(path) = &cli.transformers {
        std::fs::write(path, &release.update.transformers_source)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote transformers to {path}");
    }
    if let Some(dir) = &cli.emit {
        emit_bundle(Path::new(dir), &release).map_err(|e| e.to_string())?;
        println!("wrote bundle to {dir}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("upt_run: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("upt_run: {e}");
            ExitCode::FAILURE
        }
    }
}
