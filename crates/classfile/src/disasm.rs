//! Human-readable disassembly of class files, for debugging updates.
//!
//! The update preparation tool's diff output is easier to sanity-check
//! against a textual listing than against the binary format; this module
//! produces one.

use std::fmt::Write as _;

use crate::bytecode::Instr;
use crate::class::{ClassFile, MethodDef, Visibility};

/// Renders a whole class as text.
pub fn disassemble(class: &ClassFile) -> String {
    let mut out = String::new();
    let _ = write!(out, "class {}", class.name);
    if let Some(sup) = &class.superclass {
        let _ = write!(out, " extends {sup}");
    }
    if class.flags.access_override {
        out.push_str(" [access-override]");
    }
    if class.flags.native {
        out.push_str(" [native]");
    }
    out.push_str(" {\n");
    for f in &class.static_fields {
        let _ = writeln!(
            out,
            "  static {}{}{}: {}",
            vis_prefix(f.visibility),
            if f.is_final { "final " } else { "" },
            f.name,
            f.ty
        );
    }
    for f in &class.fields {
        let _ = writeln!(
            out,
            "  {}{}{}: {}",
            vis_prefix(f.visibility),
            if f.is_final { "final " } else { "" },
            f.name,
            f.ty
        );
    }
    for m in &class.methods {
        out.push_str(&disassemble_method(m));
    }
    out.push_str("}\n");
    out
}

/// Renders one method with numbered instructions.
pub fn disassemble_method(method: &MethodDef) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "  {} {{", method.signature());
    match &method.code {
        None => out.push_str("    <native>\n"),
        Some(code) => {
            for (pc, instr) in code.instrs.iter().enumerate() {
                let _ = writeln!(out, "    {pc:4}: {}", render_instr(instr));
            }
        }
    }
    out.push_str("  }\n");
    out
}

fn vis_prefix(v: Visibility) -> &'static str {
    match v {
        Visibility::Public => "",
        Visibility::Private => "private ",
        Visibility::Protected => "protected ",
    }
}

fn render_instr(i: &Instr) -> String {
    use Instr::*;
    match i {
        ConstInt(v) => format!("const.i {v}"),
        ConstBool(v) => format!("const.b {v}"),
        ConstStr(s) => format!("const.s {s:?}"),
        ConstNull => "const.null".into(),
        Load(s) => format!("load {s}"),
        Store(s) => format!("store {s}"),
        Add => "add".into(),
        Sub => "sub".into(),
        Mul => "mul".into(),
        Div => "div".into(),
        Rem => "rem".into(),
        Neg => "neg".into(),
        CmpEq => "cmp.eq".into(),
        CmpNe => "cmp.ne".into(),
        CmpLt => "cmp.lt".into(),
        CmpLe => "cmp.le".into(),
        CmpGt => "cmp.gt".into(),
        CmpGe => "cmp.ge".into(),
        Not => "not".into(),
        BoolEq => "bool.eq".into(),
        RefEq => "ref.eq".into(),
        RefNe => "ref.ne".into(),
        StrConcat => "str.concat".into(),
        StrEq => "str.eq".into(),
        New(c) => format!("new {c}"),
        GetField { class, field } => format!("getfield {class}.{field}"),
        PutField { class, field } => format!("putfield {class}.{field}"),
        GetStatic { class, field } => format!("getstatic {class}.{field}"),
        PutStatic { class, field } => format!("putstatic {class}.{field}"),
        NewArray(t) => format!("newarray {t}"),
        ALoad => "aload".into(),
        AStore => "astore".into(),
        ArrayLen => "arraylen".into(),
        CallVirtual { class, method, argc } => format!("call.virt {class}.{method}/{argc}"),
        CallStatic { class, method, argc } => format!("call.static {class}.{method}/{argc}"),
        CallSpecial { class, method, argc } => format!("call.special {class}.{method}/{argc}"),
        Jump(t) => format!("jump {t}"),
        JumpIfTrue(t) => format!("jump.true {t}"),
        JumpIfFalse(t) => format!("jump.false {t}"),
        Return => "return".into(),
        ReturnValue => "return.value".into(),
        Pop => "pop".into(),
        Dup => "dup".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClassBuilder;
    use crate::ty::Type;

    #[test]
    fn disassembly_mentions_members_and_instrs() {
        let class = ClassBuilder::new("User")
            .field("age", Type::Int)
            .method("getAge", [], Type::Int, |m| {
                m.instr(Instr::Load(0))
                    .instr(Instr::GetField { class: "User".into(), field: "age".into() })
                    .instr(Instr::ReturnValue);
            })
            .build();
        let text = disassemble(&class);
        assert!(text.contains("class User extends Object"), "{text}");
        assert!(text.contains("age: int"), "{text}");
        assert!(text.contains("getfield User.age"), "{text}");
        assert!(text.contains("getAge(): int"), "{text}");
    }

    #[test]
    fn native_method_renders_placeholder() {
        let class = ClassBuilder::new("Sys")
            .flags(crate::ClassFlags::NATIVE)
            .native_method("time", [], Type::Int, true)
            .build();
        let text = disassemble(&class);
        assert!(text.contains("<native>"), "{text}");
        assert!(text.contains("[native]"), "{text}");
    }
}
