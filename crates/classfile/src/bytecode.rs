//! The symbolic stack bytecode executed (after resolution) by the VM.
//!
//! Instructions reference classes, fields and methods **by name**; the VM's
//! baseline compiler resolves them to hard-coded word offsets and dispatch
//! slots at (simulated) JIT time. This split is load-bearing for the paper:
//! a class update changes layouts, so compiled code of any method whose
//! *bytecode* mentions an updated class becomes stale — the paper's
//! "indirect method updates" (§3.1).


use crate::name::ClassName;
use crate::ty::Type;

/// Index of an instruction within a method body (branch target).
pub type Pc = u32;

/// Index of a local-variable slot. Slot 0 holds `this` in instance methods.
pub type LocalSlot = u16;

/// A symbolic bytecode instruction.
///
/// The machine is a conventional operand-stack machine: operands are pushed
/// and consumed on an evaluation stack; locals live in numbered slots.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Instr {
    // ---- constants -----------------------------------------------------
    /// Push an integer constant.
    ConstInt(i64),
    /// Push a boolean constant.
    ConstBool(bool),
    /// Push a reference to a freshly allocated string with this content.
    ConstStr(String),
    /// Push the null reference.
    ConstNull,

    // ---- locals --------------------------------------------------------
    /// Push the value of a local slot.
    Load(LocalSlot),
    /// Pop into a local slot.
    Store(LocalSlot),

    // ---- integer arithmetic (pop 2 ints unless noted, push result) -----
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (traps on division by zero).
    Div,
    /// Integer remainder (traps on division by zero).
    Rem,
    /// Integer negation (pops one int).
    Neg,

    // ---- comparisons (pop 2 ints, push bool) ----------------------------
    /// `==` on integers.
    CmpEq,
    /// `!=` on integers.
    CmpNe,
    /// `<` on integers.
    CmpLt,
    /// `<=` on integers.
    CmpLe,
    /// `>` on integers.
    CmpGt,
    /// `>=` on integers.
    CmpGe,

    // ---- booleans -------------------------------------------------------
    /// Logical negation (pops one bool).
    Not,
    /// `==` on booleans (pops two bools).
    BoolEq,

    // ---- references -----------------------------------------------------
    /// Reference identity `==` (pops two refs, pushes bool).
    RefEq,
    /// Reference identity `!=`.
    RefNe,

    // ---- strings ---------------------------------------------------------
    /// Pop two strings, push their concatenation (allocates).
    StrConcat,
    /// Pop two strings, push value equality as bool. Null-tolerant:
    /// two nulls are equal, null never equals a string.
    StrEq,

    // ---- objects ----------------------------------------------------------
    /// Allocate an instance of the class with fields zero/null-initialized
    /// and push a reference to it. Constructors are called separately via
    /// [`Instr::CallSpecial`].
    New(ClassName),
    /// Pop an object reference, push the value of the named instance field.
    GetField {
        /// Static type of the receiver (where field lookup starts).
        class: ClassName,
        /// Field name.
        field: String,
    },
    /// Pop a value then an object reference; store into the named field.
    PutField {
        /// Static type of the receiver.
        class: ClassName,
        /// Field name.
        field: String,
    },
    /// Push the value of a static field.
    GetStatic {
        /// Declaring class.
        class: ClassName,
        /// Field name.
        field: String,
    },
    /// Pop a value and store it into a static field.
    PutStatic {
        /// Declaring class.
        class: ClassName,
        /// Field name.
        field: String,
    },

    // ---- arrays ------------------------------------------------------------
    /// Pop a length, allocate an array of the given element type, push it.
    NewArray(Type),
    /// Pop index then array reference, push the element.
    ALoad,
    /// Pop value, index, then array reference; store the element.
    AStore,
    /// Pop an array reference, push its length.
    ArrayLen,

    // ---- calls ----------------------------------------------------------
    /// Virtual dispatch: pop `argc` arguments then the receiver; invoke the
    /// named method on the receiver's *dynamic* class through its dispatch
    /// table (TIB). Pushes a result if the method returns a value.
    CallVirtual {
        /// Static receiver type (where the verifier checks the signature).
        class: ClassName,
        /// Method name.
        method: String,
        /// Number of arguments, excluding the receiver.
        argc: u8,
    },
    /// Static call: pop `argc` arguments; invoke the named static method.
    CallStatic {
        /// Declaring class.
        class: ClassName,
        /// Method name.
        method: String,
        /// Number of arguments.
        argc: u8,
    },
    /// Non-virtual instance call (constructor invocations, `super` calls):
    /// pop `argc` arguments then the receiver; invoke exactly the named
    /// class's method, bypassing dynamic dispatch.
    CallSpecial {
        /// Exact class whose method runs.
        class: ClassName,
        /// Method name (constructors are named `<init>`).
        method: String,
        /// Number of arguments, excluding the receiver.
        argc: u8,
    },

    // ---- control flow -----------------------------------------------------
    /// Unconditional branch. A branch to `target <= pc` is a loop back-edge
    /// and doubles as a VM yield point (paper §3.2).
    Jump(Pc),
    /// Pop a bool; branch if true.
    JumpIfTrue(Pc),
    /// Pop a bool; branch if false.
    JumpIfFalse(Pc),
    /// Return from a `void` method.
    Return,
    /// Pop the return value and return it.
    ReturnValue,

    // ---- stack management ---------------------------------------------------
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
}

impl Instr {
    /// The class this instruction references symbolically, if any.
    ///
    /// The update preparation tool uses this to compute *indirect method
    /// updates*: methods whose bytecode mentions an updated class must be
    /// recompiled because their resolved code embeds that class's offsets.
    pub fn referenced_class(&self) -> Option<&ClassName> {
        match self {
            Instr::New(class)
            | Instr::GetField { class, .. }
            | Instr::PutField { class, .. }
            | Instr::GetStatic { class, .. }
            | Instr::PutStatic { class, .. }
            | Instr::CallVirtual { class, .. }
            | Instr::CallStatic { class, .. }
            | Instr::CallSpecial { class, .. } => Some(class),
            Instr::NewArray(ty) => deepest_class(ty),
            _ => None,
        }
    }

    /// The branch target, if this is a branch.
    pub fn branch_target(&self) -> Option<Pc> {
        match self {
            Instr::Jump(t) | Instr::JumpIfTrue(t) | Instr::JumpIfFalse(t) => Some(*t),
            _ => None,
        }
    }

    /// Whether control never falls through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Instr::Jump(_) | Instr::Return | Instr::ReturnValue)
    }
}

fn deepest_class(ty: &Type) -> Option<&ClassName> {
    match ty {
        Type::Class(name) => Some(name),
        Type::Array(elem) => deepest_class(elem),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_class_of_field_access() {
        let i = Instr::GetField { class: ClassName::from("User"), field: "name".into() };
        assert_eq!(i.referenced_class().unwrap().as_str(), "User");
        assert_eq!(Instr::Add.referenced_class(), None);
    }

    #[test]
    fn referenced_class_of_nested_array_alloc() {
        let i = Instr::NewArray(Type::array(Type::Class(ClassName::from("EmailAddress"))));
        assert_eq!(i.referenced_class().unwrap().as_str(), "EmailAddress");
        assert_eq!(Instr::NewArray(Type::Int).referenced_class(), None);
    }

    #[test]
    fn branch_targets_and_terminators() {
        assert_eq!(Instr::Jump(7).branch_target(), Some(7));
        assert_eq!(Instr::JumpIfFalse(3).branch_target(), Some(3));
        assert_eq!(Instr::Add.branch_target(), None);
        assert!(Instr::Return.is_terminator());
        assert!(Instr::Jump(0).is_terminator());
        assert!(!Instr::JumpIfTrue(0).is_terminator());
    }
}
