//! Interned names for classes and symbolic member references.

use std::fmt;
use std::sync::Arc;


/// An interned class name.
///
/// Cloning is cheap (an [`Arc`] bump), which matters because symbolic
/// bytecode stores a `ClassName` in every field access and call instruction.
///
/// # Example
///
/// ```
/// use jvolve_classfile::ClassName;
/// let a = ClassName::from("User");
/// let b = a.clone();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "User");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassName(Arc<str>);

impl ClassName {
    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns a new name with `prefix` prepended.
    ///
    /// The update driver uses this to rename old classes out of the way
    /// (paper §2.3: `User` becomes `v131_User` during the 1.3.1 → 1.3.2
    /// update).
    pub fn with_prefix(&self, prefix: &str) -> ClassName {
        ClassName::from(format!("{prefix}{}", self.0))
    }
}

impl From<&str> for ClassName {
    fn from(s: &str) -> Self {
        ClassName(Arc::from(s))
    }
}

impl From<String> for ClassName {
    fn from(s: String) -> Self {
        ClassName(Arc::from(s.as_str()))
    }
}

impl AsRef<str> for ClassName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ClassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for ClassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassName({})", self.0)
    }
}

/// A symbolic reference to a field: `class.field`.
///
/// Field references stay symbolic in class files; the VM's baseline compiler
/// resolves them to word offsets (which is why the paper must recompile
/// *indirect* methods when a referenced class's layout changes).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldRef {
    /// Class the field is looked up on (declaring class or a subclass).
    pub class: ClassName,
    /// Field name.
    pub field: String,
}

impl FieldRef {
    /// Creates a field reference.
    pub fn new(class: impl Into<ClassName>, field: impl Into<String>) -> Self {
        FieldRef { class: class.into(), field: field.into() }
    }
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.class, self.field)
    }
}

impl fmt::Debug for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FieldRef({self})")
    }
}

/// A symbolic reference to a method: `class.method`.
///
/// MJ has no method overloading (the paper's only use of overloading — to
/// distinguish `jvolveObject` transformers — is replaced by name mangling,
/// see DESIGN.md), so a name pair identifies a method.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodRef {
    /// Class the method is looked up on.
    pub class: ClassName,
    /// Method name.
    pub method: String,
}

impl MethodRef {
    /// Creates a method reference.
    pub fn new(class: impl Into<ClassName>, method: impl Into<String>) -> Self {
        MethodRef { class: class.into(), method: method.into() }
    }
}

impl fmt::Display for MethodRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.class, self.method)
    }
}

impl fmt::Debug for MethodRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MethodRef({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_name_prefix() {
        let name = ClassName::from("User");
        assert_eq!(name.with_prefix("v131_").as_str(), "v131_User");
    }

    #[test]
    fn refs_display() {
        assert_eq!(FieldRef::new("User", "name").to_string(), "User.name");
        assert_eq!(MethodRef::new("User", "getName").to_string(), "User.getName");
    }

    #[test]
    fn class_name_ordering_is_lexicographic() {
        let mut names = [ClassName::from("B"), ClassName::from("A")];
        names.sort();
        assert_eq!(names[0].as_str(), "A");
    }
}
