//! Class-file model for the JVolve reproduction.
//!
//! This crate defines the *portable* representation of guest programs:
//! class files with fields, methods, and a symbolic stack bytecode, plus a
//! bytecode [verifier](verify), a binary [`codec`] and a
//! [disassembler](disasm).
//!
//! The representation deliberately mirrors what the JVolve paper depends on
//! in Java class files:
//!
//! * field and method references in bytecode are **symbolic**
//!   (`class name + member name`); resolving them to hard-coded offsets is
//!   the VM's baseline compiler's job — which is exactly why *indirect
//!   method updates* (paper §3.1, category 2) exist;
//! * classes carry explicit superclass links so updates can add or delete
//!   members anywhere in the hierarchy;
//! * the verifier statically type-checks updated classes, the keystone of
//!   the paper's type-safety argument (§1, §2.2);
//! * transformer classes are compiled with [`ClassFlags::ACCESS_OVERRIDE`],
//!   reproducing the paper's JastAdd extension that ignores access
//!   modifiers and permits writes to `final` fields (§2.3, footnote 1).
//!
//! # Example
//!
//! ```
//! use jvolve_classfile::{ClassFile, ClassName, Type};
//! use jvolve_classfile::builder::ClassBuilder;
//! use jvolve_classfile::bytecode::Instr;
//!
//! let class: ClassFile = ClassBuilder::new("Counter")
//!     .field("count", Type::Int)
//!     .method("get", [], Type::Int, |m| {
//!         m.instr(Instr::Load(0))
//!          .instr(Instr::GetField { class: ClassName::from("Counter"), field: "count".into() })
//!          .instr(Instr::ReturnValue);
//!     })
//!     .build();
//! assert_eq!(class.name, ClassName::from("Counter"));
//! assert!(class.find_method("get").is_some());
//! ```

pub mod builder;
pub mod bytecode;
pub mod class;
pub mod codec;
pub mod disasm;
pub mod name;
pub mod ty;
pub mod verify;

pub use class::{ClassFile, ClassFlags, Code, FieldDef, MethodDef, MethodKind, Visibility};
pub use name::{ClassName, FieldRef, MethodRef};
pub use ty::Type;

/// Name of the implicit root class every class ultimately extends.
pub const OBJECT_CLASS: &str = "Object";
/// Name of the builtin string class; string literals have this type.
pub const STRING_CLASS: &str = "String";

/// Resolution context used by the [verifier](verify) (and reusable by any
/// whole-program pass): looks classes up by name.
pub trait ClassResolver {
    /// Returns the class with the given name, if known.
    fn resolve(&self, name: &ClassName) -> Option<&ClassFile>;

    /// Walks the superclass chain starting at `name` (inclusive).
    fn supers<'a>(&'a self, name: &ClassName) -> SuperChain<'a>
    where
        Self: Sized,
    {
        SuperChain { resolver: self, next: Some(name.clone()) }
    }
}

/// Iterator over a class and its superclasses, most-derived first.
pub struct SuperChain<'a> {
    resolver: &'a dyn DynResolver,
    next: Option<ClassName>,
}

/// Object-safe shim so [`SuperChain`] can hold any resolver.
trait DynResolver {
    fn resolve_dyn(&self, name: &ClassName) -> Option<&ClassFile>;
}

impl<R: ClassResolver> DynResolver for R {
    fn resolve_dyn(&self, name: &ClassName) -> Option<&ClassFile> {
        self.resolve(name)
    }
}

impl<'a> Iterator for SuperChain<'a> {
    type Item = &'a ClassFile;

    fn next(&mut self) -> Option<&'a ClassFile> {
        let name = self.next.take()?;
        let class = self.resolver.resolve_dyn(&name)?;
        self.next = class.superclass.clone();
        Some(class)
    }
}

/// A set of classes keyed by name; the simplest [`ClassResolver`].
///
/// Used by the update preparation tool to hold the "old" and "new" program
/// versions, and by tests.
#[derive(Debug, Clone, Default)]
pub struct ClassSet {
    classes: std::collections::BTreeMap<ClassName, ClassFile>,
}

impl ClassSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a class, replacing any previous class of the same name.
    pub fn insert(&mut self, class: ClassFile) -> Option<ClassFile> {
        self.classes.insert(class.name.clone(), class)
    }

    /// Looks a class up by name.
    pub fn get(&self, name: &ClassName) -> Option<&ClassFile> {
        self.classes.get(name)
    }

    /// Number of classes in the set.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates over the classes in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ClassFile> {
        self.classes.values()
    }

    /// Iterates over the class names in order.
    pub fn names(&self) -> impl Iterator<Item = &ClassName> {
        self.classes.keys()
    }

    /// Removes a class by name.
    pub fn remove(&mut self, name: &ClassName) -> Option<ClassFile> {
        self.classes.remove(name)
    }
}

impl ClassResolver for ClassSet {
    fn resolve(&self, name: &ClassName) -> Option<&ClassFile> {
        self.get(name)
    }
}

impl FromIterator<ClassFile> for ClassSet {
    fn from_iter<I: IntoIterator<Item = ClassFile>>(iter: I) -> Self {
        let mut set = ClassSet::new();
        for class in iter {
            set.insert(class);
        }
        set
    }
}

impl Extend<ClassFile> for ClassSet {
    fn extend<I: IntoIterator<Item = ClassFile>>(&mut self, iter: I) {
        for class in iter {
            self.insert(class);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClassBuilder;

    #[test]
    fn class_set_insert_and_lookup() {
        let mut set = ClassSet::new();
        assert!(set.is_empty());
        set.insert(ClassBuilder::new("A").build());
        set.insert(ClassBuilder::new("B").extends("A").build());
        assert_eq!(set.len(), 2);
        assert!(set.get(&ClassName::from("A")).is_some());
        assert!(set.get(&ClassName::from("C")).is_none());
    }

    #[test]
    fn super_chain_walks_to_root() {
        let set: ClassSet = [
            ClassBuilder::new("A").build(),
            ClassBuilder::new("B").extends("A").build(),
            ClassBuilder::new("C").extends("B").build(),
        ]
        .into_iter()
        .collect();
        let names: Vec<_> = set
            .supers(&ClassName::from("C"))
            .map(|c| c.name.to_string())
            .collect();
        assert_eq!(names, ["C", "B", "A"]);
    }

    #[test]
    fn super_chain_stops_at_unknown_class() {
        let set: ClassSet = [ClassBuilder::new("B").extends("Missing").build()]
            .into_iter()
            .collect();
        let names: Vec<_> = set
            .supers(&ClassName::from("B"))
            .map(|c| c.name.to_string())
            .collect();
        assert_eq!(names, ["B"]);
    }
}
