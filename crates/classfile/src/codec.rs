//! Binary encoding and decoding of class files.
//!
//! The update driver in the paper loads "new class files" supplied by the
//! user at update time; this codec plays the role of the on-disk class-file
//! format. The format is a straightforward tagged binary encoding: a magic
//! header, a format version, then the class structure with length-prefixed
//! strings and one opcode byte per instruction.

use std::fmt;

use crate::bytecode::Instr;
use crate::class::{
    ClassFile, ClassFlags, Code, FieldDef, MethodDef, MethodKind, Visibility,
};
use crate::name::ClassName;
use crate::ty::Type;

/// File magic (`MJCF` = "MJ class file").
pub const MAGIC: &[u8; 4] = b"MJCF";
/// Current format version.
pub const FORMAT_VERSION: u16 = 1;

/// A decoding failure.
#[derive(Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset where decoding failed.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class file decode error at byte {}: {}", self.offset, self.message)
    }
}

impl fmt::Debug for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DecodeError({self})")
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a class file to bytes.
pub fn encode(class: &ClassFile) -> Vec<u8> {
    let mut w = Writer { buf: Vec::with_capacity(256) };
    w.bytes(MAGIC);
    w.u16(FORMAT_VERSION);
    w.str_(class.name.as_str());
    match &class.superclass {
        Some(s) => {
            w.u8(1);
            w.str_(s.as_str());
        }
        None => w.u8(0),
    }
    w.u8(u8::from(class.flags.access_override) | (u8::from(class.flags.native) << 1));
    w.u32(class.fields.len() as u32);
    for f in &class.fields {
        w.field(f);
    }
    w.u32(class.static_fields.len() as u32);
    for f in &class.static_fields {
        w.field(f);
    }
    w.u32(class.methods.len() as u32);
    for m in &class.methods {
        w.method(m);
    }
    w.buf
}

/// Decodes a class file from bytes.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated input, a bad magic/version, or an
/// unknown tag.
pub fn decode(bytes: &[u8]) -> Result<ClassFile, DecodeError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(r.error("bad magic"));
    }
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(r.error(format!("unsupported format version {version}")));
    }
    let name = ClassName::from(r.str_()?);
    let superclass = if r.u8()? == 1 { Some(ClassName::from(r.str_()?)) } else { None };
    let flag_bits = r.u8()?;
    let flags =
        ClassFlags { access_override: flag_bits & 1 != 0, native: flag_bits & 2 != 0 };
    let nfields = r.count(MIN_FIELD_BYTES, "field")?;
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        fields.push(r.field()?);
    }
    let nstatics = r.count(MIN_FIELD_BYTES, "static field")?;
    let mut static_fields = Vec::with_capacity(nstatics);
    for _ in 0..nstatics {
        static_fields.push(r.field()?);
    }
    let nmethods = r.count(MIN_METHOD_BYTES, "method")?;
    let mut methods = Vec::with_capacity(nmethods);
    for _ in 0..nmethods {
        methods.push(r.method()?);
    }
    if r.pos != bytes.len() {
        return Err(r.error("trailing bytes after class file"));
    }
    Ok(ClassFile { name, superclass, fields, static_fields, methods, flags })
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    fn str_(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    fn ty(&mut self, t: &Type) {
        match t {
            Type::Int => self.u8(0),
            Type::Bool => self.u8(1),
            Type::Class(name) => {
                self.u8(2);
                self.str_(name.as_str());
            }
            Type::Array(elem) => {
                self.u8(3);
                self.ty(elem);
            }
            Type::Void => self.u8(4),
        }
    }

    fn visibility(&mut self, v: Visibility) {
        self.u8(match v {
            Visibility::Public => 0,
            Visibility::Private => 1,
            Visibility::Protected => 2,
        });
    }

    fn field(&mut self, f: &FieldDef) {
        self.str_(&f.name);
        self.ty(&f.ty);
        self.visibility(f.visibility);
        self.u8(u8::from(f.is_final));
    }

    fn method(&mut self, m: &MethodDef) {
        self.str_(&m.name);
        self.u32(m.params.len() as u32);
        for p in &m.params {
            self.ty(p);
        }
        self.ty(&m.ret);
        self.u8(u8::from(m.is_static));
        self.visibility(m.visibility);
        self.u8(match m.kind {
            MethodKind::Regular => 0,
            MethodKind::Constructor => 1,
            MethodKind::StaticInit => 2,
        });
        match &m.code {
            None => self.u8(0),
            Some(code) => {
                self.u8(1);
                self.u16(code.max_locals);
                self.u32(code.instrs.len() as u32);
                for i in &code.instrs {
                    self.instr(i);
                }
            }
        }
    }

    fn instr(&mut self, i: &Instr) {
        use Instr::*;
        match i {
            ConstInt(v) => {
                self.u8(0);
                self.i64(*v);
            }
            ConstBool(v) => {
                self.u8(1);
                self.u8(u8::from(*v));
            }
            ConstStr(s) => {
                self.u8(2);
                self.str_(s);
            }
            ConstNull => self.u8(3),
            Load(s) => {
                self.u8(4);
                self.u16(*s);
            }
            Store(s) => {
                self.u8(5);
                self.u16(*s);
            }
            Add => self.u8(6),
            Sub => self.u8(7),
            Mul => self.u8(8),
            Div => self.u8(9),
            Rem => self.u8(10),
            Neg => self.u8(11),
            CmpEq => self.u8(12),
            CmpNe => self.u8(13),
            CmpLt => self.u8(14),
            CmpLe => self.u8(15),
            CmpGt => self.u8(16),
            CmpGe => self.u8(17),
            Not => self.u8(18),
            BoolEq => self.u8(19),
            RefEq => self.u8(20),
            RefNe => self.u8(21),
            StrConcat => self.u8(22),
            StrEq => self.u8(23),
            New(c) => {
                self.u8(24);
                self.str_(c.as_str());
            }
            GetField { class, field } => {
                self.u8(25);
                self.str_(class.as_str());
                self.str_(field);
            }
            PutField { class, field } => {
                self.u8(26);
                self.str_(class.as_str());
                self.str_(field);
            }
            GetStatic { class, field } => {
                self.u8(27);
                self.str_(class.as_str());
                self.str_(field);
            }
            PutStatic { class, field } => {
                self.u8(28);
                self.str_(class.as_str());
                self.str_(field);
            }
            NewArray(t) => {
                self.u8(29);
                self.ty(t);
            }
            ALoad => self.u8(30),
            AStore => self.u8(31),
            ArrayLen => self.u8(32),
            CallVirtual { class, method, argc } => {
                self.u8(33);
                self.str_(class.as_str());
                self.str_(method);
                self.u8(*argc);
            }
            CallStatic { class, method, argc } => {
                self.u8(34);
                self.str_(class.as_str());
                self.str_(method);
                self.u8(*argc);
            }
            CallSpecial { class, method, argc } => {
                self.u8(35);
                self.str_(class.as_str());
                self.str_(method);
                self.u8(*argc);
            }
            Jump(t) => {
                self.u8(36);
                self.u32(*t);
            }
            JumpIfTrue(t) => {
                self.u8(37);
                self.u32(*t);
            }
            JumpIfFalse(t) => {
                self.u8(38);
                self.u32(*t);
            }
            Return => self.u8(39),
            ReturnValue => self.u8(40),
            Pop => self.u8(41),
            Dup => self.u8(42),
        }
    }
}

// Smallest possible encodings, used to bound length prefixes against the
// remaining input *before* allocating. A hostile count can then never cost
// more memory than the buffer it arrived in.
//
// Field: empty name (4) + type tag (1) + visibility (1) + is_final (1).
const MIN_FIELD_BYTES: usize = 7;
// Method: empty name (4) + param count (4) + return type tag (1) +
// is_static (1) + visibility (1) + kind (1) + has-code flag (1).
const MIN_METHOD_BYTES: usize = 13;
// Parameter types and instructions are at least one tag/opcode byte.
const MIN_TY_BYTES: usize = 1;
const MIN_INSTR_BYTES: usize = 1;

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn error(&self, message: impl Into<String>) -> DecodeError {
        DecodeError { offset: self.pos, message: message.into() }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.remaining() {
            return Err(self.error("unexpected end of input"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u32` count of items that each occupy at least
    /// `min_item_bytes`, rejecting counts the remaining input cannot
    /// possibly satisfy.
    fn count(&mut self, min_item_bytes: usize, what: &str) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        match n.checked_mul(min_item_bytes) {
            Some(need) if need <= self.remaining() => Ok(n),
            _ => Err(self.error(format!(
                "{what} count {n} exceeds remaining input ({} bytes)",
                self.remaining()
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("length checked")))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    fn str_(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.error("invalid UTF-8 in string"))
    }

    fn ty(&mut self) -> Result<Type, DecodeError> {
        match self.u8()? {
            0 => Ok(Type::Int),
            1 => Ok(Type::Bool),
            2 => Ok(Type::Class(ClassName::from(self.str_()?))),
            3 => Ok(Type::array(self.ty()?)),
            4 => Ok(Type::Void),
            t => Err(self.error(format!("unknown type tag {t}"))),
        }
    }

    fn visibility(&mut self) -> Result<Visibility, DecodeError> {
        match self.u8()? {
            0 => Ok(Visibility::Public),
            1 => Ok(Visibility::Private),
            2 => Ok(Visibility::Protected),
            t => Err(self.error(format!("unknown visibility tag {t}"))),
        }
    }

    fn field(&mut self) -> Result<FieldDef, DecodeError> {
        Ok(FieldDef {
            name: self.str_()?,
            ty: self.ty()?,
            visibility: self.visibility()?,
            is_final: self.u8()? != 0,
        })
    }

    fn method(&mut self) -> Result<MethodDef, DecodeError> {
        let name = self.str_()?;
        let nparams = self.count(MIN_TY_BYTES, "parameter")?;
        let mut params = Vec::with_capacity(nparams);
        for _ in 0..nparams {
            params.push(self.ty()?);
        }
        let ret = self.ty()?;
        let is_static = self.u8()? != 0;
        let visibility = self.visibility()?;
        let kind = match self.u8()? {
            0 => MethodKind::Regular,
            1 => MethodKind::Constructor,
            2 => MethodKind::StaticInit,
            t => return Err(self.error(format!("unknown method kind {t}"))),
        };
        let code = if self.u8()? == 1 {
            let max_locals = self.u16()?;
            let n = self.count(MIN_INSTR_BYTES, "instruction")?;
            let mut instrs = Vec::with_capacity(n);
            for _ in 0..n {
                instrs.push(self.instr()?);
            }
            Some(Code { instrs, max_locals })
        } else {
            None
        };
        Ok(MethodDef { name, params, ret, is_static, visibility, kind, code })
    }

    fn instr(&mut self) -> Result<Instr, DecodeError> {
        use Instr::*;
        Ok(match self.u8()? {
            0 => ConstInt(self.i64()?),
            1 => ConstBool(self.u8()? != 0),
            2 => ConstStr(self.str_()?),
            3 => ConstNull,
            4 => Load(self.u16()?),
            5 => Store(self.u16()?),
            6 => Add,
            7 => Sub,
            8 => Mul,
            9 => Div,
            10 => Rem,
            11 => Neg,
            12 => CmpEq,
            13 => CmpNe,
            14 => CmpLt,
            15 => CmpLe,
            16 => CmpGt,
            17 => CmpGe,
            18 => Not,
            19 => BoolEq,
            20 => RefEq,
            21 => RefNe,
            22 => StrConcat,
            23 => StrEq,
            24 => New(ClassName::from(self.str_()?)),
            25 => GetField { class: ClassName::from(self.str_()?), field: self.str_()? },
            26 => PutField { class: ClassName::from(self.str_()?), field: self.str_()? },
            27 => GetStatic { class: ClassName::from(self.str_()?), field: self.str_()? },
            28 => PutStatic { class: ClassName::from(self.str_()?), field: self.str_()? },
            29 => NewArray(self.ty()?),
            30 => ALoad,
            31 => AStore,
            32 => ArrayLen,
            33 => CallVirtual {
                class: ClassName::from(self.str_()?),
                method: self.str_()?,
                argc: self.u8()?,
            },
            34 => CallStatic {
                class: ClassName::from(self.str_()?),
                method: self.str_()?,
                argc: self.u8()?,
            },
            35 => CallSpecial {
                class: ClassName::from(self.str_()?),
                method: self.str_()?,
                argc: self.u8()?,
            },
            36 => Jump(self.u32()?),
            37 => JumpIfTrue(self.u32()?),
            38 => JumpIfFalse(self.u32()?),
            39 => Return,
            40 => ReturnValue,
            41 => Pop,
            42 => Dup,
            op => return Err(self.error(format!("unknown opcode {op}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClassBuilder;

    fn sample_class() -> ClassFile {
        ClassBuilder::new("User")
            .extends("Object")
            .field_full("name", Type::string(), Visibility::Private, true)
            .field("age", Type::Int)
            .static_field("count", Type::Int)
            .constructor([Type::string()], |m| {
                m.instr(Instr::Load(0))
                    .instr(Instr::Load(1))
                    .instr(Instr::PutField { class: "User".into(), field: "name".into() })
                    .instr(Instr::Return);
            })
            .method("getName", [], Type::string(), |m| {
                m.instr(Instr::Load(0))
                    .instr(Instr::GetField { class: "User".into(), field: "name".into() })
                    .instr(Instr::ReturnValue);
            })
            .static_method("bump", [], Type::Void, |m| {
                m.instr(Instr::GetStatic { class: "User".into(), field: "count".into() })
                    .instr(Instr::ConstInt(1))
                    .instr(Instr::Add)
                    .instr(Instr::PutStatic { class: "User".into(), field: "count".into() })
                    .instr(Instr::Return);
            })
            .build()
    }

    #[test]
    fn roundtrip_preserves_class() {
        let class = sample_class();
        let bytes = encode(&class);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(class, decoded);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&sample_class());
        bytes[0] = b'X';
        let err = decode(&bytes).unwrap_err();
        assert!(err.message.contains("magic"), "{err}");
    }

    #[test]
    fn rejects_truncated_input() {
        let bytes = encode(&sample_class());
        let err = decode(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(err.message.contains("end of input"), "{err}");
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = encode(&sample_class());
        bytes.push(0);
        let err = decode(&bytes).unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn rejects_inflated_field_count() {
        // A memberless class ends with the three u32 counts, so the
        // field count is the first of the last 12 bytes.
        let class = ClassBuilder::new("T").build();
        let mut bytes = encode(&class);
        let at = bytes.len() - 12;
        bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.message.contains("field count"), "{err}");
    }

    #[test]
    fn rejects_inflated_instruction_count() {
        // A one-instruction body ends with ninstrs (4 bytes) + Return (1).
        let class = ClassBuilder::new("T")
            .static_method("f", [], Type::Void, |m| {
                m.instr(Instr::Return);
            })
            .build();
        let mut bytes = encode(&class);
        let at = bytes.len() - 5;
        bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.message.contains("instruction count"), "{err}");
    }

    #[test]
    fn every_truncation_and_length_inflation_fails_cleanly() {
        // No prefix of a valid encoding decodes, and no 4-byte window
        // stamped with 0xFFFFFFFF can panic or allocate past the buffer.
        let bytes = encode(&sample_class());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
        for at in 0..bytes.len().saturating_sub(4) {
            let mut mutant = bytes.clone();
            mutant[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            let _ = decode(&mutant); // must return, not panic or OOM
        }
    }

    #[test]
    fn rejects_unknown_opcode() {
        // Find the first opcode of the constructor body and corrupt it.
        let class = ClassBuilder::new("T")
            .static_method("f", [], Type::Void, |m| {
                m.instr(Instr::Return);
            })
            .build();
        let mut bytes = encode(&class);
        let last = bytes.len() - 1;
        bytes[last] = 200;
        let err = decode(&bytes).unwrap_err();
        assert!(err.message.contains("opcode"), "{err}");
    }
}
