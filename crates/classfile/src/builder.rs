//! Fluent construction of class files, mainly for tests and generated code.
//!
//! The MJ compiler in `jvolve-lang` produces class files directly; these
//! builders exist so VM and DSU tests can assemble precise bytecode without
//! going through the frontend.

use crate::bytecode::{Instr, Pc};
use crate::class::{
    ClassFile, ClassFlags, Code, FieldDef, MethodDef, MethodKind, Visibility, CTOR_NAME,
};
use crate::name::ClassName;
use crate::ty::Type;
use crate::OBJECT_CLASS;

/// Builds a [`ClassFile`].
///
/// # Example
///
/// ```
/// use jvolve_classfile::builder::ClassBuilder;
/// use jvolve_classfile::bytecode::Instr;
/// use jvolve_classfile::Type;
///
/// let class = ClassBuilder::new("Pair")
///     .field("a", Type::Int)
///     .field("b", Type::Int)
///     .static_method("zero", [], Type::Int, |m| {
///         m.instr(Instr::ConstInt(0)).instr(Instr::ReturnValue);
///     })
///     .build();
/// assert_eq!(class.fields.len(), 2);
/// ```
#[derive(Debug)]
pub struct ClassBuilder {
    class: ClassFile,
}

impl ClassBuilder {
    /// Starts a class extending `Object`.
    pub fn new(name: impl Into<ClassName>) -> Self {
        let name = name.into();
        let superclass =
            if name.as_str() == OBJECT_CLASS { None } else { Some(ClassName::from(OBJECT_CLASS)) };
        ClassBuilder {
            class: ClassFile {
                name,
                superclass,
                fields: Vec::new(),
                static_fields: Vec::new(),
                methods: Vec::new(),
                flags: ClassFlags::default(),
            },
        }
    }

    /// Sets the superclass.
    pub fn extends(mut self, superclass: impl Into<ClassName>) -> Self {
        self.class.superclass = Some(superclass.into());
        self
    }

    /// Sets class flags.
    pub fn flags(mut self, flags: ClassFlags) -> Self {
        self.class.flags = flags;
        self
    }

    /// Adds a public instance field.
    pub fn field(mut self, name: impl Into<String>, ty: Type) -> Self {
        self.class.fields.push(FieldDef::new(name, ty));
        self
    }

    /// Adds an instance field with explicit visibility/finality.
    pub fn field_full(
        mut self,
        name: impl Into<String>,
        ty: Type,
        visibility: Visibility,
        is_final: bool,
    ) -> Self {
        self.class.fields.push(FieldDef { name: name.into(), ty, visibility, is_final });
        self
    }

    /// Adds a public static field.
    pub fn static_field(mut self, name: impl Into<String>, ty: Type) -> Self {
        self.class.static_fields.push(FieldDef::new(name, ty));
        self
    }

    /// Adds a public instance method whose body is emitted by `f`.
    pub fn method(
        self,
        name: impl Into<String>,
        params: impl IntoIterator<Item = Type>,
        ret: Type,
        f: impl FnOnce(&mut MethodBuilder),
    ) -> Self {
        self.method_full(name, params, ret, false, MethodKind::Regular, f)
    }

    /// Adds a public static method whose body is emitted by `f`.
    pub fn static_method(
        self,
        name: impl Into<String>,
        params: impl IntoIterator<Item = Type>,
        ret: Type,
        f: impl FnOnce(&mut MethodBuilder),
    ) -> Self {
        self.method_full(name, params, ret, true, MethodKind::Regular, f)
    }

    /// Adds a constructor (`<init>`).
    pub fn constructor(
        self,
        params: impl IntoIterator<Item = Type>,
        f: impl FnOnce(&mut MethodBuilder),
    ) -> Self {
        self.method_full(CTOR_NAME, params, Type::Void, false, MethodKind::Constructor, f)
    }

    /// Adds a method with full control over staticness and kind.
    pub fn method_full(
        mut self,
        name: impl Into<String>,
        params: impl IntoIterator<Item = Type>,
        ret: Type,
        is_static: bool,
        kind: MethodKind,
        f: impl FnOnce(&mut MethodBuilder),
    ) -> Self {
        let params: Vec<Type> = params.into_iter().collect();
        let reserved = params.len() as u16 + u16::from(!is_static);
        let mut mb = MethodBuilder { instrs: Vec::new(), max_locals: reserved };
        f(&mut mb);
        self.class.methods.push(MethodDef {
            name: name.into(),
            params,
            ret,
            is_static,
            visibility: Visibility::Public,
            kind,
            code: Some(Code { instrs: mb.instrs, max_locals: mb.max_locals }),
        });
        self
    }

    /// Adds a native (bodyless) method; only valid on classes that will be
    /// flagged [`ClassFlags::NATIVE`].
    pub fn native_method(
        mut self,
        name: impl Into<String>,
        params: impl IntoIterator<Item = Type>,
        ret: Type,
        is_static: bool,
    ) -> Self {
        self.class.methods.push(MethodDef {
            name: name.into(),
            params: params.into_iter().collect(),
            ret,
            is_static,
            visibility: Visibility::Public,
            kind: MethodKind::Regular,
            code: None,
        });
        self
    }

    /// Finishes the class.
    pub fn build(self) -> ClassFile {
        self.class
    }
}

/// Accumulates a method body; returned positions support back-patching
/// forward branches.
#[derive(Debug)]
pub struct MethodBuilder {
    instrs: Vec<Instr>,
    max_locals: u16,
}

impl MethodBuilder {
    /// Appends one instruction.
    pub fn instr(&mut self, i: Instr) -> &mut Self {
        if let Instr::Store(slot) | Instr::Load(slot) = i {
            self.max_locals = self.max_locals.max(slot + 1);
        }
        self.instrs.push(i);
        self
    }

    /// Appends many instructions.
    pub fn instrs(&mut self, is: impl IntoIterator<Item = Instr>) -> &mut Self {
        for i in is {
            self.instr(i);
        }
        self
    }

    /// Current instruction index; use as a branch target for back-edges.
    pub fn here(&self) -> Pc {
        self.instrs.len() as Pc
    }

    /// Emits a placeholder branch and returns its index for later patching.
    pub fn emit_forward(&mut self, template: Instr) -> usize {
        let at = self.instrs.len();
        self.instrs.push(template);
        at
    }

    /// Patches the branch at `at` (emitted by [`Self::emit_forward`]) to
    /// target the current position.
    ///
    /// # Panics
    ///
    /// Panics if the instruction at `at` is not a branch.
    pub fn patch_to_here(&mut self, at: usize) {
        let target = self.here();
        match &mut self.instrs[at] {
            Instr::Jump(t) | Instr::JumpIfTrue(t) | Instr::JumpIfFalse(t) => *t = target,
            other => panic!("patch_to_here: instruction at {at} is not a branch: {other:?}"),
        }
    }

    /// Reserves local slots up to `n`.
    pub fn locals(&mut self, n: u16) -> &mut Self {
        self.max_locals = self.max_locals.max(n);
        self
    }
}

/// Builds the root `Object` class (no fields, no methods).
pub fn object_class() -> ClassFile {
    ClassBuilder::new(OBJECT_CLASS).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts_locals() {
        let class = ClassBuilder::new("T")
            .static_method("f", [Type::Int], Type::Int, |m| {
                m.instr(Instr::Load(0))
                    .instr(Instr::Store(5))
                    .instr(Instr::Load(5))
                    .instr(Instr::ReturnValue);
            })
            .build();
        let code = class.find_method("f").unwrap().code.as_ref().unwrap();
        assert_eq!(code.max_locals, 6);
    }

    #[test]
    fn forward_branch_patching() {
        let class = ClassBuilder::new("T")
            .static_method("f", [Type::Bool], Type::Int, |m| {
                m.instr(Instr::Load(0));
                let j = m.emit_forward(Instr::JumpIfFalse(0));
                m.instr(Instr::ConstInt(1)).instr(Instr::ReturnValue);
                m.patch_to_here(j);
                m.instr(Instr::ConstInt(0)).instr(Instr::ReturnValue);
            })
            .build();
        let code = class.find_method("f").unwrap().code.as_ref().unwrap();
        assert_eq!(code.instrs[1], Instr::JumpIfFalse(4));
    }

    #[test]
    fn object_class_is_root() {
        assert!(object_class().is_root());
    }

    #[test]
    #[should_panic(expected = "not a branch")]
    fn patching_non_branch_panics() {
        ClassBuilder::new("T").static_method("f", [], Type::Void, |m| {
            let at = m.emit_forward(Instr::Pop);
            m.patch_to_here(at);
        });
    }
}
