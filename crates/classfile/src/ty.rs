//! Guest-language types as they appear in class files.

use std::fmt;


use crate::name::ClassName;
use crate::{OBJECT_CLASS, STRING_CLASS};

/// A guest type: primitive, class reference, or array.
///
/// `Void` only appears as a method return type.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// Reference to an instance of the named class (or a subclass).
    Class(ClassName),
    /// Array with the given element type.
    Array(Box<Type>),
    /// Absence of a value; valid only as a return type.
    Void,
}

impl Type {
    /// The builtin string type (`Class("String")`).
    pub fn string() -> Type {
        Type::Class(ClassName::from(STRING_CLASS))
    }

    /// The root object type (`Class("Object")`).
    pub fn object() -> Type {
        Type::Class(ClassName::from(OBJECT_CLASS))
    }

    /// Convenience constructor for array types.
    pub fn array(elem: Type) -> Type {
        Type::Array(Box::new(elem))
    }

    /// Whether values of this type are heap references (classes, arrays).
    ///
    /// The GC uses per-class layouts derived from this to find pointer
    /// fields during the copying traversal.
    pub fn is_reference(&self) -> bool {
        matches!(self, Type::Class(_) | Type::Array(_))
    }

    /// Whether this is a primitive value type (`Int` or `Bool`).
    pub fn is_primitive(&self) -> bool {
        matches!(self, Type::Int | Type::Bool)
    }

    /// The class name if this is a class type.
    pub fn class_name(&self) -> Option<&ClassName> {
        match self {
            Type::Class(name) => Some(name),
            _ => None,
        }
    }

    /// The element type if this is an array type.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Array(elem) => Some(elem),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => f.write_str("int"),
            Type::Bool => f.write_str("bool"),
            Type::Class(name) => write!(f, "{name}"),
            Type::Array(elem) => write!(f, "{elem}[]"),
            Type::Void => f.write_str("void"),
        }
    }
}

impl fmt::Debug for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Type({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nested_array() {
        let ty = Type::array(Type::array(Type::Int));
        assert_eq!(ty.to_string(), "int[][]");
    }

    #[test]
    fn reference_classification() {
        assert!(Type::string().is_reference());
        assert!(Type::array(Type::Int).is_reference());
        assert!(!Type::Int.is_reference());
        assert!(!Type::Void.is_reference());
        assert!(Type::Bool.is_primitive());
    }

    #[test]
    fn accessors() {
        assert_eq!(Type::string().class_name().unwrap().as_str(), "String");
        assert_eq!(Type::array(Type::Int).elem(), Some(&Type::Int));
        assert_eq!(Type::Int.elem(), None);
    }
}
