//! Bytecode verification by abstract interpretation.
//!
//! JVolve "relies on bytecode verification to statically type-check updated
//! classes" (paper §1): an update is only admitted if every new class file
//! verifies against the updated class set. This module implements a
//! JVM-style dataflow verifier: it simulates every method over a lattice of
//! *verification types*, merging states at control-flow joins, and rejects
//! ill-typed code, bad branches, stack-shape mismatches, access-control
//! violations, and writes to `final` fields outside constructors.
//!
//! Transformer classes are compiled with `ClassFlags::access_override`
//! (the paper's JastAdd extension); for those, access-control and
//! final-field checks are relaxed exactly as footnote 1 of the paper
//! describes.

use std::collections::VecDeque;
use std::fmt;

use crate::bytecode::Instr;
use crate::class::{ClassFile, FieldDef, MethodDef, MethodKind, Visibility, CTOR_NAME};
use crate::name::ClassName;
use crate::ty::Type;
use crate::{ClassResolver, OBJECT_CLASS, STRING_CLASS};

/// Hard bound on the simulated operand-stack depth. Real MJ code never
/// comes close; a method that pushes past this (e.g. a decoded class file
/// with a hostile unbounded-push loop) is rejected instead of letting the
/// verifier's frames — and later the interpreter's stack — grow without
/// limit.
pub const MAX_OPERAND_STACK: usize = 4096;

/// A verification failure, with enough context to debug generated code.
#[derive(Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Class being verified.
    pub class: ClassName,
    /// Method being verified, if the error is method-local.
    pub method: Option<String>,
    /// Offending instruction index, if method-local.
    pub pc: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl VerifyError {
    fn class_level(class: &ClassName, message: impl Into<String>) -> Self {
        VerifyError { class: class.clone(), method: None, pc: None, message: message.into() }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification of {} failed", self.class)?;
        if let Some(m) = &self.method {
            write!(f, " in method {m}")?;
        }
        if let Some(pc) = self.pc {
            write!(f, " at pc {pc}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl fmt::Debug for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VerifyError({self})")
    }
}

impl std::error::Error for VerifyError {}

/// Verification type lattice.
#[derive(Clone, PartialEq, Eq, Debug)]
enum VType {
    /// Unusable / uninitialized (lattice top: merge of incompatible types).
    Top,
    /// Integer.
    Int,
    /// Boolean.
    Bool,
    /// Reference to an instance of the class or a subclass.
    Ref(ClassName),
    /// Array of the given element type.
    Array(Type),
    /// The null reference (bottom of the reference sub-lattice).
    Null,
}

impl VType {
    fn of(ty: &Type) -> VType {
        match ty {
            Type::Int => VType::Int,
            Type::Bool => VType::Bool,
            Type::Class(name) => VType::Ref(name.clone()),
            Type::Array(elem) => VType::Array((**elem).clone()),
            Type::Void => VType::Top,
        }
    }

    fn is_reference(&self) -> bool {
        matches!(self, VType::Ref(_) | VType::Array(_) | VType::Null)
    }
}

impl fmt::Display for VType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VType::Top => f.write_str("<unusable>"),
            VType::Int => f.write_str("int"),
            VType::Bool => f.write_str("bool"),
            VType::Ref(c) => write!(f, "{c}"),
            VType::Array(t) => write!(f, "{t}[]"),
            VType::Null => f.write_str("null"),
        }
    }
}

/// Abstract machine state at one program point.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Frame {
    locals: Vec<VType>,
    stack: Vec<VType>,
}

/// Verifies a whole class against a resolver holding the full program.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found: structural problems (missing or
/// cyclic superclasses, duplicate members, bad overrides) or method-level
/// type errors.
pub fn verify_class<R: ClassResolver>(resolver: &R, class: &ClassFile) -> Result<(), VerifyError> {
    verify_structure(resolver, class)?;
    for method in &class.methods {
        if let Some(code) = &method.code {
            let mut v = MethodVerifier { resolver, class, method, code_len: code.instrs.len() };
            v.run(&code.instrs, code.max_locals)?;
        } else if !class.flags.native {
            return Err(VerifyError::class_level(
                &class.name,
                format!("method {} has no code but class is not native", method.name),
            ));
        }
    }
    Ok(())
}

/// Verifies every class in an iterator (e.g. a whole update payload).
///
/// # Errors
///
/// Returns the first error across all classes.
pub fn verify_all<'a, R: ClassResolver>(
    resolver: &R,
    classes: impl IntoIterator<Item = &'a ClassFile>,
) -> Result<(), VerifyError> {
    for class in classes {
        verify_class(resolver, class)?;
    }
    Ok(())
}

fn verify_structure<R: ClassResolver>(resolver: &R, class: &ClassFile) -> Result<(), VerifyError> {
    // Superclass chain exists and is acyclic.
    let mut seen = vec![class.name.clone()];
    let mut cur = class.superclass.clone();
    while let Some(name) = cur {
        if seen.contains(&name) {
            return Err(VerifyError::class_level(
                &class.name,
                format!("cyclic superclass chain through {name}"),
            ));
        }
        let sup = resolver.resolve(&name).ok_or_else(|| {
            VerifyError::class_level(&class.name, format!("unknown superclass {name}"))
        })?;
        seen.push(name);
        cur = sup.superclass.clone();
    }

    // Unique member names.
    for (i, f) in class.fields.iter().enumerate() {
        if class.fields[..i].iter().any(|g| g.name == f.name) {
            return Err(VerifyError::class_level(
                &class.name,
                format!("duplicate field {}", f.name),
            ));
        }
    }
    for (i, f) in class.static_fields.iter().enumerate() {
        if class.static_fields[..i].iter().any(|g| g.name == f.name) {
            return Err(VerifyError::class_level(
                &class.name,
                format!("duplicate static field {}", f.name),
            ));
        }
    }
    for (i, m) in class.methods.iter().enumerate() {
        if class.methods[..i].iter().any(|n| n.name == m.name) {
            return Err(VerifyError::class_level(
                &class.name,
                format!("duplicate method {}", m.name),
            ));
        }
    }

    // Overrides must preserve the signature (TIB slots are shared).
    if let Some(sup_name) = &class.superclass {
        for m in &class.methods {
            if m.kind != MethodKind::Regular || m.is_static {
                continue;
            }
            if let Some((_, sup_m)) = lookup_method(resolver, sup_name, &m.name) {
                if sup_m.is_static || sup_m.kind != MethodKind::Regular {
                    continue;
                }
                if sup_m.params != m.params || sup_m.ret != m.ret {
                    return Err(VerifyError::class_level(
                        &class.name,
                        format!(
                            "method {} overrides a superclass method with a different signature \
                             ({} vs {})",
                            m.name,
                            m.signature(),
                            sup_m.signature()
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Looks a method up starting at `class`, walking the superclass chain.
/// Returns the declaring class name and the definition.
pub fn lookup_method<'a, R: ClassResolver>(
    resolver: &'a R,
    class: &ClassName,
    method: &str,
) -> Option<(ClassName, &'a MethodDef)> {
    let mut cur = Some(class.clone());
    while let Some(name) = cur {
        let c = resolver.resolve(&name)?;
        if let Some(m) = c.find_method(method) {
            return Some((name, m));
        }
        cur = c.superclass.clone();
    }
    None
}

/// Looks an instance field up starting at `class`, walking supers.
pub fn lookup_field<'a, R: ClassResolver>(
    resolver: &'a R,
    class: &ClassName,
    field: &str,
) -> Option<(ClassName, &'a FieldDef)> {
    let mut cur = Some(class.clone());
    while let Some(name) = cur {
        let c = resolver.resolve(&name)?;
        if let Some(f) = c.find_field(field) {
            return Some((name, f));
        }
        cur = c.superclass.clone();
    }
    None
}

/// Looks a static field up starting at `class`, walking supers.
pub fn lookup_static_field<'a, R: ClassResolver>(
    resolver: &'a R,
    class: &ClassName,
    field: &str,
) -> Option<(ClassName, &'a FieldDef)> {
    let mut cur = Some(class.clone());
    while let Some(name) = cur {
        let c = resolver.resolve(&name)?;
        if let Some(f) = c.find_static_field(field) {
            return Some((name, f));
        }
        cur = c.superclass.clone();
    }
    None
}

/// Whether `sub` is `sup` or a transitive subclass of it.
pub fn is_subclass<R: ClassResolver>(resolver: &R, sub: &ClassName, sup: &ClassName) -> bool {
    let mut cur = Some(sub.clone());
    while let Some(name) = cur {
        if &name == sup {
            return true;
        }
        cur = resolver.resolve(&name).and_then(|c| c.superclass.clone());
    }
    false
}

struct MethodVerifier<'a, R: ClassResolver> {
    resolver: &'a R,
    class: &'a ClassFile,
    method: &'a MethodDef,
    code_len: usize,
}

impl<'a, R: ClassResolver> MethodVerifier<'a, R> {
    fn err(&self, pc: usize, message: impl Into<String>) -> VerifyError {
        VerifyError {
            class: self.class.name.clone(),
            method: Some(self.method.name.clone()),
            pc: Some(pc as u32),
            message: message.into(),
        }
    }

    fn run(&mut self, instrs: &[Instr], max_locals: u16) -> Result<(), VerifyError> {
        if instrs.is_empty() {
            return Err(self.err(0, "empty method body"));
        }
        let mut locals = Vec::with_capacity(max_locals as usize);
        if !self.method.is_static {
            locals.push(VType::Ref(self.class.name.clone()));
        }
        for p in &self.method.params {
            locals.push(VType::of(p));
        }
        if locals.len() > max_locals as usize {
            return Err(self.err(0, "max_locals smaller than parameter count"));
        }
        locals.resize(max_locals as usize, VType::Top);

        let entry = Frame { locals, stack: Vec::new() };
        let mut states: Vec<Option<Frame>> = vec![None; instrs.len()];
        states[0] = Some(entry);
        let mut worklist: VecDeque<usize> = VecDeque::from([0usize]);

        while let Some(pc) = worklist.pop_front() {
            let frame = states[pc].clone().expect("worklist entries have states");
            let instr = &instrs[pc];
            let mut out = frame;
            let mut successors: Vec<usize> = Vec::with_capacity(2);

            self.step(pc, instr, &mut out)?;
            if out.stack.len() > MAX_OPERAND_STACK {
                return Err(self.err(pc, "operand stack overflow"));
            }

            if let Some(target) = instr.branch_target() {
                let target = target as usize;
                if target >= self.code_len {
                    return Err(self.err(pc, format!("branch target {target} out of range")));
                }
                successors.push(target);
            }
            if !instr.is_terminator() {
                if pc + 1 >= self.code_len {
                    return Err(self.err(pc, "control falls off the end of the method"));
                }
                successors.push(pc + 1);
            }

            for succ in successors {
                match &mut states[succ] {
                    slot @ None => {
                        *slot = Some(out.clone());
                        worklist.push_back(succ);
                    }
                    Some(existing) => {
                        if merge_frames(self.resolver, existing, &out)
                            .map_err(|m| self.err(pc, m))?
                        {
                            worklist.push_back(succ);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn step(&self, pc: usize, instr: &Instr, frame: &mut Frame) -> Result<(), VerifyError> {
        macro_rules! pop {
            () => {
                frame.stack.pop().ok_or_else(|| self.err(pc, "operand stack underflow"))?
            };
        }
        macro_rules! pop_int {
            () => {{
                let v = pop!();
                if v != VType::Int {
                    return Err(self.err(pc, format!("expected int on stack, found {v}")));
                }
            }};
        }
        macro_rules! pop_bool {
            () => {{
                let v = pop!();
                if v != VType::Bool {
                    return Err(self.err(pc, format!("expected bool on stack, found {v}")));
                }
            }};
        }
        macro_rules! pop_assignable {
            ($ty:expr) => {{
                let v = pop!();
                if !self.assignable(&v, $ty) {
                    return Err(self.err(pc, format!("expected {}, found {v}", $ty)));
                }
            }};
        }

        match instr {
            Instr::ConstInt(_) => frame.stack.push(VType::Int),
            Instr::ConstBool(_) => frame.stack.push(VType::Bool),
            Instr::ConstStr(_) => frame.stack.push(VType::Ref(ClassName::from(STRING_CLASS))),
            Instr::ConstNull => frame.stack.push(VType::Null),

            Instr::Load(slot) => {
                let v = frame
                    .locals
                    .get(*slot as usize)
                    .ok_or_else(|| self.err(pc, format!("local slot {slot} out of range")))?
                    .clone();
                if v == VType::Top {
                    return Err(self.err(pc, format!("load of uninitialized local {slot}")));
                }
                frame.stack.push(v);
            }
            Instr::Store(slot) => {
                let v = pop!();
                let slot = *slot as usize;
                if slot >= frame.locals.len() {
                    return Err(self.err(pc, format!("local slot {slot} out of range")));
                }
                frame.locals[slot] = v;
            }

            Instr::Add | Instr::Sub | Instr::Mul | Instr::Div | Instr::Rem => {
                pop_int!();
                pop_int!();
                frame.stack.push(VType::Int);
            }
            Instr::Neg => {
                pop_int!();
                frame.stack.push(VType::Int);
            }
            Instr::CmpEq | Instr::CmpNe | Instr::CmpLt | Instr::CmpLe | Instr::CmpGt
            | Instr::CmpGe => {
                pop_int!();
                pop_int!();
                frame.stack.push(VType::Bool);
            }
            Instr::Not => {
                pop_bool!();
                frame.stack.push(VType::Bool);
            }
            Instr::BoolEq => {
                pop_bool!();
                pop_bool!();
                frame.stack.push(VType::Bool);
            }
            Instr::RefEq | Instr::RefNe => {
                let a = pop!();
                let b = pop!();
                if !a.is_reference() || !b.is_reference() {
                    return Err(self.err(pc, "reference comparison on non-references"));
                }
                frame.stack.push(VType::Bool);
            }
            Instr::StrConcat => {
                pop_assignable!(&Type::string());
                pop_assignable!(&Type::string());
                frame.stack.push(VType::Ref(ClassName::from(STRING_CLASS)));
            }
            Instr::StrEq => {
                pop_assignable!(&Type::string());
                pop_assignable!(&Type::string());
                frame.stack.push(VType::Bool);
            }

            Instr::New(class) => {
                let c = self
                    .resolver
                    .resolve(class)
                    .ok_or_else(|| self.err(pc, format!("new of unknown class {class}")))?;
                if c.flags.native {
                    return Err(self.err(pc, format!("cannot instantiate native class {class}")));
                }
                frame.stack.push(VType::Ref(class.clone()));
            }
            Instr::GetField { class, field } => {
                let (decl, def) = lookup_field(self.resolver, class, field)
                    .ok_or_else(|| self.err(pc, format!("unknown field {class}.{field}")))?;
                self.check_member_access(pc, &decl, def.visibility)?;
                pop_assignable!(&Type::Class(class.clone()));
                frame.stack.push(VType::of(&def.ty));
            }
            Instr::PutField { class, field } => {
                let (decl, def) = lookup_field(self.resolver, class, field)
                    .ok_or_else(|| self.err(pc, format!("unknown field {class}.{field}")))?;
                self.check_member_access(pc, &decl, def.visibility)?;
                self.check_final_write(pc, &decl, def)?;
                let ty = def.ty.clone();
                pop_assignable!(&ty);
                pop_assignable!(&Type::Class(class.clone()));
            }
            Instr::GetStatic { class, field } => {
                let (decl, def) = lookup_static_field(self.resolver, class, field)
                    .ok_or_else(|| self.err(pc, format!("unknown static field {class}.{field}")))?;
                self.check_member_access(pc, &decl, def.visibility)?;
                frame.stack.push(VType::of(&def.ty));
            }
            Instr::PutStatic { class, field } => {
                let (decl, def) = lookup_static_field(self.resolver, class, field)
                    .ok_or_else(|| self.err(pc, format!("unknown static field {class}.{field}")))?;
                self.check_member_access(pc, &decl, def.visibility)?;
                self.check_final_write(pc, &decl, def)?;
                let ty = def.ty.clone();
                pop_assignable!(&ty);
            }

            Instr::NewArray(elem) => {
                pop_int!();
                frame.stack.push(VType::Array(elem.clone()));
            }
            Instr::ALoad => {
                pop_int!();
                let arr = pop!();
                match arr {
                    VType::Array(elem) => frame.stack.push(VType::of(&elem)),
                    other => {
                        return Err(self.err(pc, format!("array load on non-array {other}")));
                    }
                }
            }
            Instr::AStore => {
                let val = pop!();
                pop_int!();
                let arr = pop!();
                match arr {
                    VType::Array(elem) => {
                        if !self.assignable(&val, &elem) {
                            return Err(self.err(
                                pc,
                                format!("array store of {val} into {elem}[]"),
                            ));
                        }
                    }
                    other => {
                        return Err(self.err(pc, format!("array store on non-array {other}")));
                    }
                }
            }
            Instr::ArrayLen => {
                let arr = pop!();
                if !matches!(arr, VType::Array(_)) {
                    return Err(self.err(pc, format!("array length of non-array {arr}")));
                }
                frame.stack.push(VType::Int);
            }

            Instr::CallVirtual { class, method, argc } => {
                let (decl, def) = lookup_method(self.resolver, class, method)
                    .ok_or_else(|| self.err(pc, format!("unknown method {class}.{method}")))?;
                if def.is_static {
                    return Err(self.err(pc, format!("virtual call to static {class}.{method}")));
                }
                self.check_member_access(pc, &decl, def.visibility)?;
                self.check_call_args(pc, frame, def, *argc)?;
                pop_assignable!(&Type::Class(class.clone()));
                if def.ret != Type::Void {
                    frame.stack.push(VType::of(&def.ret));
                }
            }
            Instr::CallStatic { class, method, argc } => {
                let (decl, def) = lookup_method(self.resolver, class, method)
                    .ok_or_else(|| self.err(pc, format!("unknown method {class}.{method}")))?;
                if !def.is_static {
                    return Err(self.err(pc, format!("static call to instance {class}.{method}")));
                }
                self.check_member_access(pc, &decl, def.visibility)?;
                self.check_call_args(pc, frame, def, *argc)?;
                if def.ret != Type::Void {
                    frame.stack.push(VType::of(&def.ret));
                }
            }
            Instr::CallSpecial { class, method, argc } => {
                let c = self
                    .resolver
                    .resolve(class)
                    .ok_or_else(|| self.err(pc, format!("special call to unknown class {class}")))?;
                let def = c.find_method(method).ok_or_else(|| {
                    self.err(pc, format!("special call to unknown method {class}.{method}"))
                })?;
                if def.is_static {
                    return Err(self.err(pc, format!("special call to static {class}.{method}")));
                }
                self.check_member_access(pc, class, def.visibility)?;
                self.check_call_args(pc, frame, def, *argc)?;
                pop_assignable!(&Type::Class(class.clone()));
                if def.ret != Type::Void {
                    frame.stack.push(VType::of(&def.ret));
                }
            }

            Instr::Jump(_) => {}
            Instr::JumpIfTrue(_) | Instr::JumpIfFalse(_) => pop_bool!(),
            Instr::Return => {
                if self.method.ret != Type::Void {
                    return Err(self.err(pc, "void return from non-void method"));
                }
            }
            Instr::ReturnValue => {
                if self.method.ret == Type::Void {
                    return Err(self.err(pc, "value return from void method"));
                }
                let ret = self.method.ret.clone();
                pop_assignable!(&ret);
            }

            Instr::Pop => {
                pop!();
            }
            Instr::Dup => {
                let v = pop!();
                frame.stack.push(v.clone());
                frame.stack.push(v);
            }
        }
        Ok(())
    }

    fn check_call_args(
        &self,
        pc: usize,
        frame: &mut Frame,
        def: &MethodDef,
        argc: u8,
    ) -> Result<(), VerifyError> {
        if def.params.len() != argc as usize {
            return Err(self.err(
                pc,
                format!("call passes {argc} arguments, method takes {}", def.params.len()),
            ));
        }
        // Arguments were pushed left-to-right; pop right-to-left.
        for param in def.params.iter().rev() {
            let v = frame.stack.pop().ok_or_else(|| self.err(pc, "operand stack underflow"))?;
            if !self.assignable(&v, param) {
                return Err(self.err(pc, format!("argument type {v} not assignable to {param}")));
            }
        }
        Ok(())
    }

    fn check_member_access(
        &self,
        pc: usize,
        declaring: &ClassName,
        visibility: Visibility,
    ) -> Result<(), VerifyError> {
        if self.class.flags.access_override {
            return Ok(());
        }
        let ok = match visibility {
            Visibility::Public => true,
            Visibility::Private => &self.class.name == declaring,
            Visibility::Protected => is_subclass(self.resolver, &self.class.name, declaring),
        };
        if ok {
            Ok(())
        } else {
            Err(self.err(pc, format!("{visibility:?} member of {declaring} not accessible")))
        }
    }

    fn check_final_write(
        &self,
        pc: usize,
        declaring: &ClassName,
        field: &FieldDef,
    ) -> Result<(), VerifyError> {
        if !field.is_final || self.class.flags.access_override {
            return Ok(());
        }
        let in_ctor = matches!(self.method.kind, MethodKind::Constructor | MethodKind::StaticInit)
            || self.method.name == CTOR_NAME;
        if in_ctor && &self.class.name == declaring {
            Ok(())
        } else {
            Err(self.err(pc, format!("write to final field {declaring}.{}", field.name)))
        }
    }

    fn assignable(&self, from: &VType, to: &Type) -> bool {
        match (from, to) {
            (VType::Int, Type::Int) => true,
            (VType::Bool, Type::Bool) => true,
            (VType::Null, t) => t.is_reference(),
            (VType::Ref(c), Type::Class(d)) => is_subclass(self.resolver, c, d),
            (VType::Array(_), Type::Class(d)) => d.as_str() == OBJECT_CLASS,
            (VType::Array(a), Type::Array(b)) => a == &**b,
            _ => false,
        }
    }
}

/// Merges `incoming` into `existing`; returns `Ok(true)` if `existing`
/// changed (the successor must be revisited).
fn merge_frames<R: ClassResolver>(
    resolver: &R,
    existing: &mut Frame,
    incoming: &Frame,
) -> Result<bool, String> {
    if existing.stack.len() != incoming.stack.len() {
        return Err(format!(
            "operand stack depth mismatch at join ({} vs {})",
            existing.stack.len(),
            incoming.stack.len()
        ));
    }
    if existing.locals.len() != incoming.locals.len() {
        return Err("local count mismatch at join".to_string());
    }
    let mut changed = false;
    for (e, i) in existing.locals.iter_mut().chain(existing.stack.iter_mut()).zip(
        incoming.locals.iter().chain(incoming.stack.iter()),
    ) {
        let merged = merge_vtype(resolver, e, i);
        if &merged != e {
            *e = merged;
            changed = true;
        }
    }
    Ok(changed)
}

fn merge_vtype<R: ClassResolver>(resolver: &R, a: &VType, b: &VType) -> VType {
    if a == b {
        return a.clone();
    }
    match (a, b) {
        (VType::Null, other) | (other, VType::Null) if other.is_reference() => other.clone(),
        (VType::Ref(x), VType::Ref(y)) => {
            common_super(resolver, x, y).map(VType::Ref).unwrap_or(VType::Top)
        }
        (VType::Ref(_), VType::Array(_)) | (VType::Array(_), VType::Ref(_)) => {
            VType::Ref(ClassName::from(OBJECT_CLASS))
        }
        (VType::Array(_), VType::Array(_)) => VType::Ref(ClassName::from(OBJECT_CLASS)),
        _ => VType::Top,
    }
}

fn common_super<R: ClassResolver>(
    resolver: &R,
    a: &ClassName,
    b: &ClassName,
) -> Option<ClassName> {
    let mut ancestors = Vec::new();
    let mut cur = Some(a.clone());
    while let Some(name) = cur {
        ancestors.push(name.clone());
        cur = resolver.resolve(&name).and_then(|c| c.superclass.clone());
    }
    let mut cur = Some(b.clone());
    while let Some(name) = cur {
        if ancestors.contains(&name) {
            return Some(name);
        }
        cur = resolver.resolve(&name).and_then(|c| c.superclass.clone());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{object_class, ClassBuilder};
    use crate::class::ClassFlags;
    use crate::ClassSet;

    fn with_object(classes: impl IntoIterator<Item = ClassFile>) -> ClassSet {
        let mut set: ClassSet = classes.into_iter().collect();
        set.insert(object_class());
        set
    }

    fn verify_one(set: &ClassSet, name: &str) -> Result<(), VerifyError> {
        verify_class(set, set.get(&ClassName::from(name)).unwrap())
    }

    #[test]
    fn accepts_simple_arithmetic() {
        let set = with_object([ClassBuilder::new("T")
            .static_method("add", [Type::Int, Type::Int], Type::Int, |m| {
                m.instr(Instr::Load(0))
                    .instr(Instr::Load(1))
                    .instr(Instr::Add)
                    .instr(Instr::ReturnValue);
            })
            .build()]);
        verify_one(&set, "T").unwrap();
    }

    #[test]
    fn rejects_stack_underflow() {
        let set = with_object([ClassBuilder::new("T")
            .static_method("f", [], Type::Void, |m| {
                m.instr(Instr::Add).instr(Instr::Return);
            })
            .build()]);
        let err = verify_one(&set, "T").unwrap_err();
        assert!(err.message.contains("underflow"), "{err}");
    }

    #[test]
    fn rejects_type_confusion_int_as_ref() {
        let set = with_object([ClassBuilder::new("T")
            .field("x", Type::Int)
            .static_method("f", [], Type::Int, |m| {
                m.instr(Instr::ConstInt(3))
                    .instr(Instr::GetField { class: "T".into(), field: "x".into() })
                    .instr(Instr::ReturnValue);
            })
            .build()]);
        let err = verify_one(&set, "T").unwrap_err();
        assert!(err.message.contains("expected T"), "{err}");
    }

    #[test]
    fn rejects_falling_off_end() {
        let set = with_object([ClassBuilder::new("T")
            .static_method("f", [], Type::Void, |m| {
                m.instr(Instr::ConstInt(1)).instr(Instr::Pop);
            })
            .build()]);
        let err = verify_one(&set, "T").unwrap_err();
        assert!(err.message.contains("falls off"), "{err}");
    }

    #[test]
    fn rejects_branch_out_of_range() {
        let set = with_object([ClassBuilder::new("T")
            .static_method("f", [], Type::Void, |m| {
                m.instr(Instr::Jump(99));
            })
            .build()]);
        let err = verify_one(&set, "T").unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
    }

    #[test]
    fn rejects_stack_depth_mismatch_at_join() {
        // One path pushes an extra int before the join.
        let set = with_object([ClassBuilder::new("T")
            .static_method("f", [Type::Bool], Type::Void, |m| {
                m.instr(Instr::Load(0))
                    .instr(Instr::JumpIfFalse(3))
                    .instr(Instr::ConstInt(1))
                    // join at pc 3 with depth 1 on one path, 0 on the other
                    .instr(Instr::Return);
            })
            .build()]);
        let err = verify_one(&set, "T").unwrap_err();
        assert!(err.message.contains("depth mismatch"), "{err}");
    }

    #[test]
    fn rejects_operand_stack_overflow() {
        // Straight-line pushes past the bound: no join, no underflow —
        // only the depth limit can reject this.
        let set = with_object([ClassBuilder::new("T")
            .static_method("f", [], Type::Void, |m| {
                for _ in 0..=MAX_OPERAND_STACK {
                    m.instr(Instr::ConstInt(1));
                }
                m.instr(Instr::Return);
            })
            .build()]);
        let err = verify_one(&set, "T").unwrap_err();
        assert!(err.message.contains("operand stack overflow"), "{err}");
    }

    #[test]
    fn rejects_merge_point_type_conflict() {
        // Same depth on both paths, but int on one and bool on the other:
        // the join merges to <unusable>, which `Not` then cannot consume.
        let set = with_object([ClassBuilder::new("T")
            .static_method("f", [Type::Bool], Type::Bool, |m| {
                m.instr(Instr::Load(0));
                let j = m.emit_forward(Instr::JumpIfFalse(0));
                m.instr(Instr::ConstInt(1));
                let out = m.emit_forward(Instr::Jump(0));
                m.patch_to_here(j);
                m.instr(Instr::ConstBool(true));
                m.patch_to_here(out);
                m.instr(Instr::Not).instr(Instr::ReturnValue);
            })
            .build()]);
        let err = verify_one(&set, "T").unwrap_err();
        assert!(err.message.contains("expected bool on stack, found <unusable>"), "{err}");
    }

    #[test]
    fn merges_refs_to_common_super() {
        let set = with_object([
            ClassBuilder::new("A").build(),
            ClassBuilder::new("B").extends("A").build(),
            ClassBuilder::new("C").extends("A").build(),
            ClassBuilder::new("T")
                .static_method("f", [Type::Bool], Type::Class("A".into()), |m| {
                    m.instr(Instr::Load(0));
                    let j = m.emit_forward(Instr::JumpIfFalse(0));
                    m.instr(Instr::New("B".into()));
                    let out = m.emit_forward(Instr::Jump(0));
                    m.patch_to_here(j);
                    m.instr(Instr::New("C".into()));
                    m.patch_to_here(out);
                    m.instr(Instr::ReturnValue);
                })
                .build(),
        ]);
        verify_one(&set, "T").unwrap();
    }

    #[test]
    fn rejects_private_access_from_other_class() {
        let set = with_object([
            ClassBuilder::new("A")
                .field_full("secret", Type::Int, Visibility::Private, false)
                .build(),
            ClassBuilder::new("T")
                .static_method("f", [Type::Class("A".into())], Type::Int, |m| {
                    m.instr(Instr::Load(0))
                        .instr(Instr::GetField { class: "A".into(), field: "secret".into() })
                        .instr(Instr::ReturnValue);
                })
                .build(),
        ]);
        let err = verify_one(&set, "T").unwrap_err();
        assert!(err.message.contains("not accessible"), "{err}");
    }

    #[test]
    fn access_override_permits_private_access_and_final_writes() {
        // The transformer-class allowance (paper §2.3 / footnote 1).
        let set = with_object([
            ClassBuilder::new("A")
                .field_full("secret", Type::Int, Visibility::Private, true)
                .build(),
            ClassBuilder::new("JvolveTransformers")
                .flags(ClassFlags::ACCESS_OVERRIDE)
                .static_method("t", [Type::Class("A".into())], Type::Void, |m| {
                    m.instr(Instr::Load(0))
                        .instr(Instr::ConstInt(42))
                        .instr(Instr::PutField { class: "A".into(), field: "secret".into() })
                        .instr(Instr::Return);
                })
                .build(),
        ]);
        verify_one(&set, "JvolveTransformers").unwrap();
    }

    #[test]
    fn rejects_final_write_outside_constructor() {
        let set = with_object([ClassBuilder::new("A")
            .field_full("id", Type::Int, Visibility::Public, true)
            .method("setId", [Type::Int], Type::Void, |m| {
                m.instr(Instr::Load(0))
                    .instr(Instr::Load(1))
                    .instr(Instr::PutField { class: "A".into(), field: "id".into() })
                    .instr(Instr::Return);
            })
            .build()]);
        let err = verify_one(&set, "A").unwrap_err();
        assert!(err.message.contains("final"), "{err}");
    }

    #[test]
    fn accepts_final_write_in_constructor() {
        let set = with_object([ClassBuilder::new("A")
            .field_full("id", Type::Int, Visibility::Public, true)
            .constructor([Type::Int], |m| {
                m.instr(Instr::Load(0))
                    .instr(Instr::Load(1))
                    .instr(Instr::PutField { class: "A".into(), field: "id".into() })
                    .instr(Instr::Return);
            })
            .build()]);
        verify_one(&set, "A").unwrap();
    }

    #[test]
    fn rejects_bad_override() {
        let set = with_object([
            ClassBuilder::new("A")
                .method("f", [Type::Int], Type::Void, |m| {
                    m.instr(Instr::Return);
                })
                .build(),
            ClassBuilder::new("B")
                .extends("A")
                .method("f", [Type::Bool], Type::Void, |m| {
                    m.instr(Instr::Return);
                })
                .build(),
        ]);
        let err = verify_one(&set, "B").unwrap_err();
        assert!(err.message.contains("different signature"), "{err}");
    }

    #[test]
    fn rejects_cyclic_superclass() {
        let set: ClassSet = [
            ClassBuilder::new("A").extends("B").build(),
            ClassBuilder::new("B").extends("A").build(),
        ]
        .into_iter()
        .collect();
        let err = verify_class(&set, set.get(&ClassName::from("A")).unwrap()).unwrap_err();
        assert!(err.message.contains("cyclic"), "{err}");
    }

    #[test]
    fn rejects_wrong_argument_count() {
        let set = with_object([
            ClassBuilder::new("A")
                .static_method("g", [Type::Int], Type::Void, |m| {
                    m.instr(Instr::Return);
                })
                .static_method("f", [], Type::Void, |m| {
                    m.instr(Instr::CallStatic { class: "A".into(), method: "g".into(), argc: 0 })
                        .instr(Instr::Return);
                })
                .build(),
        ]);
        let err = verify_one(&set, "A").unwrap_err();
        assert!(err.message.contains("arguments"), "{err}");
    }

    #[test]
    fn rejects_uninitialized_local_load() {
        let set = with_object([ClassBuilder::new("T")
            .static_method("f", [], Type::Int, |m| {
                m.locals(2);
                m.instr(Instr::Load(1)).instr(Instr::ReturnValue);
            })
            .build()]);
        let err = verify_one(&set, "T").unwrap_err();
        assert!(err.message.contains("uninitialized"), "{err}");
    }

    #[test]
    fn loop_with_back_edge_verifies() {
        // sum = 0; i = 0; while (i < n) { sum += i; i += 1; } return sum;
        let set = with_object([ClassBuilder::new("T")
            .static_method("sum", [Type::Int], Type::Int, |m| {
                m.locals(3);
                m.instr(Instr::ConstInt(0)).instr(Instr::Store(1)); // sum
                m.instr(Instr::ConstInt(0)).instr(Instr::Store(2)); // i
                let head = m.here();
                m.instr(Instr::Load(2)).instr(Instr::Load(0)).instr(Instr::CmpLt);
                let exit = m.emit_forward(Instr::JumpIfFalse(0));
                m.instr(Instr::Load(1)).instr(Instr::Load(2)).instr(Instr::Add);
                m.instr(Instr::Store(1));
                m.instr(Instr::Load(2)).instr(Instr::ConstInt(1)).instr(Instr::Add);
                m.instr(Instr::Store(2));
                m.instr(Instr::Jump(head));
                m.patch_to_here(exit);
                m.instr(Instr::Load(1)).instr(Instr::ReturnValue);
            })
            .build()]);
        verify_one(&set, "T").unwrap();
    }

    #[test]
    fn null_merges_with_reference() {
        let set = with_object([ClassBuilder::new("T")
            .static_method("f", [Type::Bool], Type::string(), |m| {
                m.instr(Instr::Load(0));
                let j = m.emit_forward(Instr::JumpIfFalse(0));
                m.instr(Instr::ConstStr("yes".into()));
                let out = m.emit_forward(Instr::Jump(0));
                m.patch_to_here(j);
                m.instr(Instr::ConstNull);
                m.patch_to_here(out);
                m.instr(Instr::ReturnValue);
            })
            .build()]);
        verify_one(&set, "T").unwrap();
    }
}
