//! Class, field and method definitions.

use std::fmt;


use crate::bytecode::Instr;
use crate::name::ClassName;
use crate::ty::Type;

/// Name given to constructors in class files (as in JVM class files).
pub const CTOR_NAME: &str = "<init>";
/// Name of a class's static initializer method, run once at load time.
pub const CLINIT_NAME: &str = "<clinit>";

/// Member visibility.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Visibility {
    /// Accessible everywhere.
    #[default]
    Public,
    /// Accessible only in the declaring class.
    Private,
    /// Accessible in the declaring class and subclasses.
    Protected,
}

/// Per-class flags.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct ClassFlags {
    /// Transformer-class allowance (paper §2.3): bytecode in this class may
    /// read/write `private`/`protected` members of other classes and assign
    /// to `final` fields. Normal classes never have this set; the verifier
    /// honors it only because the update driver loads transformer classes
    /// in a special circumstance (footnote 1 in the paper).
    pub access_override: bool,
    /// Builtin class whose methods are implemented natively by the VM
    /// (e.g. `Sys`, `Str`, `Net`). Methods of such classes have no bytecode.
    pub native: bool,
}

impl ClassFlags {
    /// Flags for the special transformer class.
    pub const ACCESS_OVERRIDE: ClassFlags = ClassFlags { access_override: true, native: false };
    /// Flags for VM-native builtin classes.
    pub const NATIVE: ClassFlags = ClassFlags { access_override: false, native: true };
}

/// An instance or static field declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldDef {
    /// Field name, unique within the declaring class.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Access control.
    pub visibility: Visibility,
    /// `final` fields may only be assigned in constructors of the declaring
    /// class (or by transformer code compiled with access override).
    pub is_final: bool,
}

impl FieldDef {
    /// Creates a public, non-final field.
    pub fn new(name: impl Into<String>, ty: Type) -> Self {
        FieldDef { name: name.into(), ty, visibility: Visibility::Public, is_final: false }
    }
}

/// What kind of method a [`MethodDef`] is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MethodKind {
    /// An ordinary instance or static method.
    Regular,
    /// A constructor (`<init>`); always an instance method returning void.
    Constructor,
    /// The static initializer (`<clinit>`).
    StaticInit,
}

/// A method body: instruction sequence plus frame sizing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Code {
    /// The instructions. Branch targets index into this vector.
    pub instrs: Vec<Instr>,
    /// Number of local slots the frame needs (parameters included).
    pub max_locals: u16,
}

/// A method declaration, possibly with a body.
///
/// Native builtin methods ([`ClassFlags::native`]) have `code == None`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MethodDef {
    /// Method name; `<init>` for constructors.
    pub name: String,
    /// Parameter types, excluding the implicit `this`.
    pub params: Vec<Type>,
    /// Return type ([`Type::Void`] for void methods).
    pub ret: Type,
    /// Whether this is a static method (no `this`).
    pub is_static: bool,
    /// Access control.
    pub visibility: Visibility,
    /// Regular method, constructor, or static initializer.
    pub kind: MethodKind,
    /// Bytecode, or `None` for native methods.
    pub code: Option<Code>,
}

impl MethodDef {
    /// The method's *signature* for update classification: everything except
    /// the body. Two versions of a method whose signatures are equal but
    /// whose bodies differ constitute a **method body update** (paper §3.1);
    /// differing signatures make the enclosing change a **class update**.
    pub fn signature(&self) -> MethodSignature {
        MethodSignature {
            name: self.name.clone(),
            params: self.params.clone(),
            ret: self.ret.clone(),
            is_static: self.is_static,
            visibility: self.visibility,
        }
    }

    /// Total number of parameters including `this` for instance methods.
    pub fn arity_with_receiver(&self) -> usize {
        self.params.len() + usize::from(!self.is_static)
    }
}

/// The update-relevant part of a method declaration (no body).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MethodSignature {
    /// Method name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
    /// Staticness.
    pub is_static: bool,
    /// Access control.
    pub visibility: Visibility,
}

impl fmt::Display for MethodSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_static {
            f.write_str("static ")?;
        }
        write!(f, "{}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "): {}", self.ret)
    }
}

/// A complete class definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassFile {
    /// Class name, unique within a program version.
    pub name: ClassName,
    /// Superclass; `None` only for the root class `Object`.
    pub superclass: Option<ClassName>,
    /// Instance fields declared by this class (inherited fields are not
    /// repeated; object layout is superclass fields first, then these).
    pub fields: Vec<FieldDef>,
    /// Static fields declared by this class.
    pub static_fields: Vec<FieldDef>,
    /// Methods declared by this class.
    pub methods: Vec<MethodDef>,
    /// Class-level flags.
    pub flags: ClassFlags,
}

impl ClassFile {
    /// Finds a method declared *in this class* by name.
    pub fn find_method(&self, name: &str) -> Option<&MethodDef> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Finds an instance field declared *in this class* by name.
    pub fn find_field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Finds a static field declared in this class by name.
    pub fn find_static_field(&self, name: &str) -> Option<&FieldDef> {
        self.static_fields.iter().find(|f| f.name == name)
    }

    /// Whether this is the root class (`Object` has no superclass).
    pub fn is_root(&self) -> bool {
        self.superclass.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn method(name: &str, params: Vec<Type>, body: Vec<Instr>) -> MethodDef {
        MethodDef {
            name: name.into(),
            params,
            ret: Type::Void,
            is_static: false,
            visibility: Visibility::Public,
            kind: MethodKind::Regular,
            code: Some(Code { instrs: body, max_locals: 1 }),
        }
    }

    #[test]
    fn signature_ignores_body() {
        let a = method("f", vec![Type::Int], vec![Instr::Return]);
        let b = method("f", vec![Type::Int], vec![Instr::ConstInt(1), Instr::Pop, Instr::Return]);
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.code, b.code);
    }

    #[test]
    fn signature_distinguishes_param_types() {
        let a = method("f", vec![Type::array(Type::string())], vec![Instr::Return]);
        let b = method(
            "f",
            vec![Type::array(Type::Class(ClassName::from("EmailAddress")))],
            vec![Instr::Return],
        );
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn signature_display() {
        let m = MethodDef {
            name: "split".into(),
            params: vec![Type::string(), Type::string()],
            ret: Type::array(Type::string()),
            is_static: true,
            visibility: Visibility::Public,
            kind: MethodKind::Regular,
            code: None,
        };
        assert_eq!(m.signature().to_string(), "static split(String, String): String[]");
    }

    #[test]
    fn arity_with_receiver() {
        let mut m = method("f", vec![Type::Int, Type::Int], vec![Instr::Return]);
        assert_eq!(m.arity_with_receiver(), 3);
        m.is_static = true;
        assert_eq!(m.arity_with_receiver(), 2);
    }
}
