//! Family (c): semantic mutation of *valid* prepared updates.
//!
//! Start from an update that `Update::prepare` produced — spec and
//! payload in perfect agreement — then desynchronize exactly one thing:
//! drop or retype a transformer, flip a `ClassChangeKind`, remove a class
//! from the payload, truncate the delta batch, dangle an indirect method.
//! Oracles:
//!
//! * every rejection is the *expected* typed [`UpdateError`] variant
//!   (never a panic, never a silent commit of a corrupted update);
//! * every aborted install leaves the VM bit-identical — both
//!   `Registry::version_fingerprint` and the heap fingerprint;
//! * benign mutants (no mutation, or an extra-but-resolvable indirect
//!   method) must commit with the expected guest-visible result, and the
//!   eager and lazy protocols must agree on it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use jvolve::{apply, ApplyOptions, ClassChangeKind, Update, UpdateError};
use jvolve_classfile::{ClassFile, ClassName, MethodRef};
use jvolve_vm::{Value, Vm, VmConfig};

use crate::rng::Rng;
use crate::{panic_message, Family, FuzzFailure, FuzzReport};

/// A guest program pair with a known post-update probe value.
struct Pair {
    v1: &'static str,
    v2: &'static str,
    /// `Main.probe()` before the update.
    probe_before: i64,
    /// `Main.probe()` after a clean update.
    probe_after: i64,
    /// Whether the diff contains a `ClassUpdate` (transformer mutations
    /// only make sense when a transformer is required).
    has_class_update: bool,
}

/// Pair A: a layout change (field added) — a class update with a required
/// object transformer. The default transformer copies `a` and zeroes `b`.
const PAIR_A: Pair = Pair {
    v1: "
class P {
  field a: int;
  ctor(x: int) { this.a = x; }
  method get(): int { return this.a; }
}
class Main {
  static field p: P;
  static method setup(): void { Main.p = new P(7); }
  static method probe(): int { return Main.p.get(); }
}",
    v2: "
class P {
  field a: int;
  field b: int;
  ctor(x: int) { this.a = x; this.b = 1; }
  method get(): int { return this.a + this.b; }
}
class Main {
  static field p: P;
  static method setup(): void { Main.p = new P(7); }
  static method probe(): int { return Main.p.get(); }
}",
    probe_before: 7,
    probe_after: 7, // live object keeps a=7, gains b=0
    has_class_update: true,
};

/// Pair B: class added, class deleted, method body changed — no class
/// update, so no transformer is required.
const PAIR_B: Pair = Pair {
    v1: "
class Old {
  static method f(): int { return 1; }
}
class Main {
  static field x: int;
  static method setup(): void { Main.x = Old.f(); }
  static method probe(): int { return Main.x + 100; }
}",
    v2: "
class Fresh {
  static method f(): int { return 2; }
}
class Main {
  static field x: int;
  static method setup(): void { Main.x = Fresh.f(); }
  static method probe(): int { return Main.x + 200; }
}",
    probe_before: 101,
    probe_after: 201, // x=1 survives; probe body swapped
    has_class_update: false,
};

fn compiled(pair: &Pair) -> &'static (Vec<ClassFile>, Vec<ClassFile>) {
    static CACHE: [OnceLock<(Vec<ClassFile>, Vec<ClassFile>)>; 2] =
        [OnceLock::new(), OnceLock::new()];
    let slot = if pair.has_class_update { &CACHE[0] } else { &CACHE[1] };
    slot.get_or_init(|| {
        (
            jvolve_lang::compile(pair.v1).expect("fixture v1 compiles"),
            jvolve_lang::compile(pair.v2).expect("fixture v2 compiles"),
        )
    })
}

fn boot(pair: &Pair, lazy: bool) -> (Vm, Update) {
    let (v1, v2) = compiled(pair);
    let mut vm =
        Vm::new(VmConfig { lazy_migration: lazy, gc_threads: 1, ..VmConfig::small() });
    vm.load_classes(v1).expect("v1 loads");
    vm.call_static_sync("Main", "setup", &[]).expect("setup runs");
    let update = Update::prepare(v1, v2, "v1_").expect("update prepares");
    (vm, update)
}

fn probe(vm: &mut Vm) -> i64 {
    match vm.call_static_sync("Main", "probe", &[]) {
        Ok(Some(Value::Int(n))) => n,
        other => panic!("probe returned {other:?}"),
    }
}

/// What a mutation is expected to do to the update.
enum Expect {
    Commit,
    BadSpec,
    Compile,
    BadTransformer,
}

/// Applies one mutation to `update`; returns the expectation and a label.
fn mutate(rng: &mut Rng, pair: &Pair, update: &mut Update) -> (Expect, &'static str) {
    // Transformer mutations need a required transformer; spec mutations
    // need a changed/added/deleted class to damage — both pairs have those.
    let menu: &[usize] = if pair.has_class_update {
        &[0, 1, 2, 3, 4, 5, 6, 7, 8]
    } else {
        &[0, 1, 3, 4, 5, 6]
    };
    match rng.pick(menu) {
        // Benign: untouched update.
        0 => (Expect::Commit, "none"),
        // Benign: an extra indirect method that resolves in the old
        // version — a superset spec is safe and must still commit.
        1 => {
            let extra = MethodRef::new("Main", "setup");
            if !update.spec.indirect_methods.contains(&extra) {
                update.spec.indirect_methods.push(extra);
            }
            (Expect::Commit, "extra-resolvable-indirect")
        }
        // Flip the class-update kind: code compiled for the new layout
        // would run over untransformed objects. Must die in validation.
        2 => {
            let d = update
                .spec
                .changed
                .iter_mut()
                .find(|d| d.kind == ClassChangeKind::ClassUpdate)
                .expect("pair has a class update");
            d.kind = ClassChangeKind::MethodBodyOnly;
            (Expect::BadSpec, "flipped-kind")
        }
        // Desynchronize spec and payload: a changed class vanishes from
        // the new version.
        3 => {
            let name = update.spec.changed.first().expect("has deltas").name.clone();
            update.new_classes.remove(&name);
            (Expect::BadSpec, "payload-missing-class")
        }
        // Truncate the batch: drop a delta the payload diff requires.
        4 => {
            update.spec.changed.clear();
            (Expect::BadSpec, "truncated-deltas")
        }
        // Dangling indirect method.
        5 => {
            update.spec.indirect_methods.push(MethodRef::new("Ghost", "haunt"));
            (Expect::BadSpec, "dangling-indirect")
        }
        // Dangling added class.
        6 => {
            update.spec.added_classes.push(ClassName::from("Ghost"));
            (Expect::BadSpec, "dangling-added")
        }
        // Drop the required transformer.
        7 => {
            update.set_transformers_source("class JvolveTransformers { }");
            (Expect::Compile, "dropped-transformer")
        }
        // Retype the required transformer: wrong `from` parameter type.
        _ => {
            update.set_transformers_source(
                "class JvolveTransformers {
                   static method jvolve_object_P(to: P, from: P): void { to.a = from.a; }
                 }",
            );
            (Expect::BadTransformer, "retyped-transformer")
        }
    }
}

fn check_commit(
    vm: &mut Vm,
    pair: &Pair,
    fail: &impl Fn(String) -> FuzzFailure,
    label: &str,
) -> Result<(u64, String), FuzzFailure> {
    let got = probe(vm);
    if got != pair.probe_after {
        return Err(fail(format!(
            "{label}: committed probe {got}, expected {}",
            pair.probe_after
        )));
    }
    Ok((vm.heap_fingerprint(), vm.registry().version_fingerprint()))
}

pub(crate) fn run(seed: u64, iters: u64) -> Result<FuzzReport, FuzzFailure> {
    let mut report = FuzzReport::default();
    for iter in 0..iters {
        report.iters += 1;
        let mut rng = Rng::for_iter(seed, iter);
        let pair = if rng.bool() { &PAIR_A } else { &PAIR_B };
        let fail = |message: String| FuzzFailure { family: Family::Semantic, seed, iter, message };

        let (mut vm, mut update) = boot(pair, false);
        if probe(&mut vm) != pair.probe_before {
            return Err(fail("fixture probe drifted before the update".into()));
        }
        let reg_before = vm.registry().version_fingerprint();
        let heap_before = vm.heap_fingerprint();
        let (expect, label) = mutate(&mut rng, pair, &mut update);

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            apply(&mut vm, &update, &ApplyOptions::default())
        }));
        let outcome = match outcome {
            Err(payload) => {
                return Err(fail(format!("{label}: panicked: {}", panic_message(payload))));
            }
            Ok(o) => o,
        };

        match (&expect, outcome) {
            (Expect::Commit, Ok(_)) => {
                let (heap_eager, reg_eager) = check_commit(&mut vm, pair, &fail, label)?;
                // Differential: the same benign update must commit to the
                // same observable state under the lazy protocol.
                let (mut lazy_vm, mut lazy_update) = boot(pair, true);
                let mut lazy_rng = Rng::for_iter(seed, iter);
                let _ = lazy_rng.bool(); // keep pair pick in lockstep
                let _ = mutate(&mut lazy_rng, pair, &mut lazy_update);
                apply(&mut lazy_vm, &lazy_update, &ApplyOptions::default())
                    .map_err(|e| fail(format!("{label}: lazy apply failed: {e}")))?;
                let (heap_lazy, reg_lazy) = check_commit(&mut lazy_vm, pair, &fail, label)?;
                if heap_lazy != heap_eager || reg_lazy != reg_eager {
                    return Err(fail(format!("{label}: eager and lazy outcomes diverge")));
                }
                report.accept();
            }
            (Expect::Commit, Err(e)) => {
                return Err(fail(format!("{label}: benign update rejected: {e}")));
            }
            (_, Ok(_)) => {
                return Err(fail(format!("{label}: corrupted update was accepted")));
            }
            (_, Err(e)) => {
                let matches_expected = matches!(
                    (&expect, &e),
                    (Expect::BadSpec, UpdateError::BadSpec { .. })
                        | (Expect::Compile, UpdateError::Compile(_))
                        | (Expect::BadTransformer, UpdateError::BadTransformer { .. })
                );
                if !matches_expected {
                    return Err(fail(format!("{label}: wrong error type: {e}")));
                }
                if vm.registry().version_fingerprint() != reg_before {
                    return Err(fail(format!("{label}: registry fingerprint diverged after abort")));
                }
                if vm.heap_fingerprint() != heap_before {
                    return Err(fail(format!("{label}: heap fingerprint diverged after abort")));
                }
                if probe(&mut vm) != pair.probe_before {
                    return Err(fail(format!("{label}: old version broken after abort")));
                }
                report.reject();
            }
        }
    }
    Ok(report)
}
