//! The committed regression corpus.
//!
//! Every crash or oracle violation the fuzzer has ever found is frozen as
//! a corpus entry — a `(family, seed, iters)` triple that covered the
//! failing input — in `corpus/*.json`. `tests/corpus.rs` replays the
//! whole directory on every `cargo test`, and `fuzz_run --replay <file>`
//! replays one entry (or a directory) from the command line, so a fixed
//! bug can never silently return.
//!
//! Entry format (one JSON object per file):
//!
//! ```json
//! {
//!   "name": "codec-count-inflation",
//!   "family": "codec",
//!   "seed": "71",
//!   "iters": "200",
//!   "description": "what the original failure was"
//! }
//! ```
//!
//! `seed`/`iters` are strings so 64-bit seeds survive the float-only JSON
//! number representation.

use std::path::Path;

use jvolve_json::Json;

use crate::{run_family, Family, FuzzFailure, FuzzReport};

/// One replayable corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Unique name (the file stem, by convention).
    pub name: String,
    /// Which mutator family found it.
    pub family: Family,
    /// Run seed.
    pub seed: u64,
    /// Iterations to cover the original failure.
    pub iters: u64,
    /// What the original failure was.
    pub description: String,
}

impl CorpusEntry {
    /// Parses one entry from its JSON text.
    ///
    /// # Errors
    ///
    /// A description of the parse or schema failure.
    pub fn from_json(text: &str) -> Result<CorpusEntry, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let str_field = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let num_field = |key: &str| {
            str_field(key)?.parse::<u64>().map_err(|_| format!("field '{key}' is not a u64"))
        };
        let family_name = str_field("family")?;
        Ok(CorpusEntry {
            name: str_field("name")?,
            family: Family::parse(&family_name)
                .ok_or_else(|| format!("unknown family '{family_name}'"))?,
            seed: num_field("seed")?,
            iters: num_field("iters")?,
            description: str_field("description")?,
        })
    }

    /// Replays the entry.
    ///
    /// # Errors
    ///
    /// The regression has returned: the original (or a new) failure.
    pub fn replay(&self) -> Result<FuzzReport, FuzzFailure> {
        run_family(self.family, self.seed, self.iters)
    }
}

/// The corpus directory committed with this crate.
pub fn default_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Loads every `*.json` entry in `dir`, sorted by file name.
///
/// # Errors
///
/// An IO or parse failure, naming the offending file.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text =
                std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            CorpusEntry::from_json(&text).map_err(|e| format!("{}: {e}", p.display()))
        })
        .collect()
}
