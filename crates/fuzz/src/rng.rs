//! Deterministic random-input generation (SplitMix64).
//!
//! The same generator the repo's property tests use: one word of state,
//! reproducible by seed number, no external crates. Every fuzz iteration
//! derives its own stream from `(seed, iter)`, so a failure reproduces
//! from the command line without replaying the preceding iterations.

/// SplitMix64: a fast, well-distributed 64-bit generator with a one-word
/// state. Good enough for fuzz-input generation; not for cryptography.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero orbit and decorrelate small consecutive seeds.
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03))
    }

    /// The stream for iteration `iter` of run `seed`.
    pub fn for_iter(seed: u64, iter: u64) -> Self {
        Rng::new(seed ^ iter.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    pub fn byte(&mut self) -> u8 {
        self.next_u64() as u8
    }

    pub fn i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    pub fn pick<T: Clone>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len())].clone()
    }

    fn name_like(&mut self, first: &str, rest: &str, max_tail: usize) -> String {
        let firsts: Vec<char> = first.chars().collect();
        let rests: Vec<char> = rest.chars().collect();
        let mut s = String::new();
        s.push(self.pick(&firsts));
        for _ in 0..self.below(max_tail + 1) {
            s.push(self.pick(&rests));
        }
        s
    }

    /// `[a-z][a-zA-Z0-9_]{0,8}` — a lowercase identifier.
    pub fn ident(&mut self) -> String {
        self.name_like(
            "abcdefghijklmnopqrstuvwxyz",
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_",
            8,
        )
    }

    /// `[A-Z][a-zA-Z0-9]{0,8}` — a capitalized class name.
    pub fn class_name(&mut self) -> String {
        self.name_like(
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ",
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789",
            8,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn iter_streams_are_decorrelated() {
        let mut a = Rng::for_iter(1, 0);
        let mut b = Rng::for_iter(1, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
