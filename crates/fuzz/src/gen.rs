//! Random structured inputs: class files for the codec family and update
//! specs for the JSON family.
//!
//! These are *structurally* random, not semantically valid — the codec
//! and the spec parser must handle any well-formed encoding regardless of
//! whether the class would verify or the spec would validate.

use jvolve_classfile::bytecode::Instr;
use jvolve_classfile::{
    ClassFile, ClassFlags, ClassName, Code, FieldDef, MethodDef, MethodKind, MethodRef, Type,
    Visibility,
};
use jvolve::{ClassChangeKind, ClassDelta, UpdateSpec};

use crate::rng::Rng;

pub fn ty(rng: &mut Rng) -> Type {
    match rng.below(5) {
        0 => Type::Int,
        1 => Type::Bool,
        2 => Type::Class(ClassName::from(rng.class_name())),
        3 => Type::array(if rng.bool() { Type::Int } else { Type::Bool }),
        _ => Type::Void,
    }
}

fn visibility(rng: &mut Rng) -> Visibility {
    rng.pick(&[Visibility::Public, Visibility::Private, Visibility::Protected])
}

fn field(rng: &mut Rng) -> FieldDef {
    FieldDef {
        name: rng.ident(),
        ty: ty(rng),
        visibility: visibility(rng),
        is_final: rng.bool(),
    }
}

pub fn instr(rng: &mut Rng) -> Instr {
    let class = || ClassName::from("C");
    match rng.below(23) {
        0 => Instr::ConstInt(rng.i64()),
        1 => Instr::ConstBool(rng.bool()),
        2 => Instr::ConstStr(rng.ident()),
        3 => Instr::ConstNull,
        4 => Instr::Load(rng.below(8) as u16),
        5 => Instr::Store(rng.below(8) as u16),
        6 => rng.pick(&[Instr::Add, Instr::Sub, Instr::Mul, Instr::Div, Instr::Rem, Instr::Neg]),
        7 => rng.pick(&[
            Instr::CmpEq,
            Instr::CmpNe,
            Instr::CmpLt,
            Instr::CmpLe,
            Instr::CmpGt,
            Instr::CmpGe,
        ]),
        8 => rng.pick(&[Instr::Not, Instr::BoolEq, Instr::RefEq, Instr::RefNe]),
        9 => rng.pick(&[Instr::StrConcat, Instr::StrEq]),
        10 => Instr::New(ClassName::from(rng.class_name())),
        11 => Instr::GetField { class: class(), field: rng.ident() },
        12 => Instr::PutField { class: class(), field: rng.ident() },
        13 => Instr::GetStatic { class: class(), field: rng.ident() },
        14 => Instr::PutStatic { class: class(), field: rng.ident() },
        15 => Instr::NewArray(ty(rng)),
        16 => rng.pick(&[Instr::ALoad, Instr::AStore, Instr::ArrayLen]),
        17 => Instr::CallVirtual { class: class(), method: rng.ident(), argc: rng.byte() },
        18 => Instr::CallStatic { class: class(), method: rng.ident(), argc: rng.byte() },
        19 => Instr::CallSpecial { class: class(), method: rng.ident(), argc: rng.byte() },
        20 => {
            let target = rng.below(32) as u32;
            rng.pick(&[Instr::Jump(target), Instr::JumpIfTrue(target), Instr::JumpIfFalse(target)])
        }
        21 => rng.pick(&[Instr::Return, Instr::ReturnValue]),
        _ => rng.pick(&[Instr::Pop, Instr::Dup]),
    }
}

fn method(rng: &mut Rng) -> MethodDef {
    let code = if rng.bool() {
        Some(Code {
            instrs: (0..rng.below(10)).map(|_| instr(rng)).collect(),
            max_locals: rng.below(8) as u16,
        })
    } else {
        None
    };
    MethodDef {
        name: rng.ident(),
        params: (0..rng.below(4)).map(|_| ty(rng)).collect(),
        ret: ty(rng),
        is_static: rng.bool(),
        visibility: visibility(rng),
        kind: rng.pick(&[MethodKind::Regular, MethodKind::Constructor, MethodKind::StaticInit]),
        code,
    }
}

/// A random class file: arbitrary members, arbitrary (unverified) code.
pub fn class_file(rng: &mut Rng) -> ClassFile {
    ClassFile {
        name: ClassName::from(rng.class_name()),
        superclass: if rng.bool() { Some(ClassName::from(rng.class_name())) } else { None },
        fields: (0..rng.below(4)).map(|_| field(rng)).collect(),
        static_fields: (0..rng.below(3)).map(|_| field(rng)).collect(),
        methods: (0..rng.below(4)).map(|_| method(rng)).collect(),
        flags: ClassFlags { access_override: rng.bool(), native: rng.bool() },
    }
}

fn idents(rng: &mut Rng, max: usize) -> Vec<String> {
    (0..rng.below(max + 1)).map(|_| rng.ident()).collect()
}

fn delta(rng: &mut Rng) -> ClassDelta {
    let kind =
        if rng.bool() { ClassChangeKind::ClassUpdate } else { ClassChangeKind::MethodBodyOnly };
    let mut d = ClassDelta::empty(ClassName::from(rng.class_name()), kind);
    d.fields_added = idents(rng, 3);
    d.fields_deleted = idents(rng, 3);
    d.fields_changed = idents(rng, 3);
    d.statics_added = idents(rng, 2);
    d.statics_deleted = idents(rng, 2);
    d.statics_changed = idents(rng, 2);
    d.methods_added = idents(rng, 3);
    d.methods_deleted = idents(rng, 3);
    d.methods_body_changed = idents(rng, 3);
    d.methods_sig_changed = idents(rng, 3);
    d.superclass_changed = rng.bool();
    d.inherited_only = rng.bool();
    d
}

/// A random (structurally well-formed) update specification.
pub fn update_spec(rng: &mut Rng) -> UpdateSpec {
    UpdateSpec {
        version_prefix: format!("v{}_", rng.below(1000)),
        changed: (0..rng.below(4)).map(|_| delta(rng)).collect(),
        added_classes: (0..rng.below(3)).map(|_| ClassName::from(rng.class_name())).collect(),
        deleted_classes: (0..rng.below(3)).map(|_| ClassName::from(rng.class_name())).collect(),
        indirect_methods: (0..rng.below(4))
            .map(|_| MethodRef::new(rng.class_name(), rng.ident()))
            .collect(),
    }
}
