//! Family (b): JSON-level mutation of serialized update specs.
//!
//! Serialize a random [`UpdateSpec`], damage it — structurally (walk the
//! JSON tree and confuse types, delete or duplicate keys, dangle names)
//! or textually (truncate, splice, corrupt characters) — and replay
//! through `UpdateSpec::from_json`. The parser must return `Err(String)`
//! or a spec — never panic — and any accepted mutant must round-trip
//! losslessly through the canonical encoder.

use std::panic::{catch_unwind, AssertUnwindSafe};

use jvolve::UpdateSpec;
use jvolve_json::Json;

use crate::rng::Rng;
use crate::{gen, panic_message, Family, FuzzFailure, FuzzReport};

/// Collects mutable references to every node in the tree (preorder).
fn node_count(v: &Json) -> usize {
    1 + match v {
        Json::Arr(items) => items.iter().map(node_count).sum(),
        Json::Obj(members) => members.iter().map(|(_, m)| node_count(m)).sum(),
        _ => 0,
    }
}

fn nth_node_mut<'a>(v: &'a mut Json, n: &mut usize) -> Option<&'a mut Json> {
    if *n == 0 {
        return Some(v);
    }
    *n -= 1;
    match v {
        Json::Arr(items) => items.iter_mut().find_map(|m| nth_node_mut(m, n)),
        Json::Obj(members) => members.iter_mut().find_map(|(_, m)| nth_node_mut(m, n)),
        _ => None,
    }
}

/// One structural mutation of the JSON tree.
pub fn mutate_tree(rng: &mut Rng, root: &mut Json) {
    let total = node_count(root);
    let mut n = rng.below(total);
    let Some(node) = nth_node_mut(root, &mut n) else { return };
    match rng.below(6) {
        // Type confusion: replace the node with a different-typed value.
        0 => {
            *node = match rng.below(5) {
                0 => Json::Null,
                1 => Json::Bool(rng.bool()),
                2 => Json::Num(rng.i64() as f64),
                3 => Json::Arr(vec![Json::Num(1.0)]),
                _ => Json::Str(rng.ident()),
            }
        }
        // Delete a key.
        1 => {
            if let Json::Obj(members) = node {
                if !members.is_empty() {
                    let at = rng.below(members.len());
                    members.remove(at);
                }
            }
        }
        // Duplicate a key (with a different value).
        2 => {
            if let Json::Obj(members) = node {
                if !members.is_empty() {
                    let at = rng.below(members.len());
                    let key = members[at].0.clone();
                    members.push((key, Json::Num(rng.below(100) as f64)));
                }
            }
        }
        // Rename a key.
        3 => {
            if let Json::Obj(members) = node {
                if !members.is_empty() {
                    let at = rng.below(members.len());
                    members[at].0 = rng.ident();
                }
            }
        }
        // Dangle a name: overwrite any string with a fresh identifier.
        4 => {
            if let Json::Str(s) = node {
                *s = rng.class_name();
            }
        }
        // Grow an array with a junk element.
        _ => {
            if let Json::Arr(items) = node {
                items.push(Json::Bool(rng.bool()));
            }
        }
    }
}

/// One raw-text mutation.
fn mutate_text(rng: &mut Rng, text: &mut String) {
    let mut bytes = std::mem::take(text).into_bytes();
    match rng.below(3) {
        0 if !bytes.is_empty() => bytes.truncate(rng.below(bytes.len())),
        1 if !bytes.is_empty() => {
            let at = rng.below(bytes.len());
            bytes[at] = rng.byte();
        }
        _ => {
            let junk = [b'{', b'}', b'[', b']', b'"', b',', b'\\', 0xFF];
            bytes.push(junk[rng.below(junk.len())]);
        }
    }
    *text = String::from_utf8_lossy(&bytes).into_owned();
}

pub(crate) fn run(seed: u64, iters: u64) -> Result<FuzzReport, FuzzFailure> {
    let mut report = FuzzReport::default();
    let fail = |iter: u64, message: String| FuzzFailure {
        family: Family::Spec,
        seed,
        iter,
        message,
    };
    for iter in 0..iters {
        report.iters += 1;
        let mut rng = Rng::for_iter(seed, iter);
        let spec = gen::update_spec(&mut rng);
        let mut text = spec.to_json();

        // Structural mutations need a parseable tree; fall back to raw
        // text damage for a third of iterations.
        if rng.below(3) > 0 {
            let mut tree = Json::parse(&text).expect("canonical encoding parses");
            for _ in 0..rng.range(1, 4) {
                mutate_tree(&mut rng, &mut tree);
            }
            text = tree.pretty();
        } else {
            for _ in 0..rng.range(1, 4) {
                mutate_text(&mut rng, &mut text);
            }
        }

        match catch_unwind(AssertUnwindSafe(|| UpdateSpec::from_json(&text))) {
            Err(payload) => {
                return Err(fail(iter, format!("from_json panicked: {}", panic_message(payload))));
            }
            Ok(Err(_typed)) => report.reject(),
            Ok(Ok(parsed)) => {
                // Accepted mutants must round-trip losslessly.
                match UpdateSpec::from_json(&parsed.to_json()) {
                    Ok(again) if again == parsed => report.accept(),
                    Ok(_) => return Err(fail(iter, "accepted spec drifts through JSON".into())),
                    Err(e) => {
                        return Err(fail(iter, format!("accepted spec fails to re-parse: {e}")));
                    }
                }
            }
        }
    }
    Ok(report)
}
