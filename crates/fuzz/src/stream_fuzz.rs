//! Family (d): random release streams driven end-to-end.
//!
//! A generated guest program (`Data` with a random set of int fields, a
//! `Main` holder, and a probe that sums them) evolves through a random
//! stream of releases: fields are added and deleted, the probe multiplier
//! changes. A Rust-side mirror model predicts every probe value — live
//! objects keep the values they had, added fields appear as 0 (the
//! default transformer's contract), deleted fields vanish.
//!
//! Each release optionally injects a fault at a phase boundary before the
//! clean release is applied: spec/payload desynchronization (rejected by
//! validation in `Pending`), a broken or retyped transformer (rejected
//! mid-install, after renames and loads, exercising the rollback ledger).
//! After every fault the registry and heap fingerprints must be
//! bit-identical to the pre-update snapshot. Every clean release is
//! applied to an eager VM *and* a lazy VM; at stream end both must agree
//! on the probe value and the registry fingerprint.

use std::panic::{catch_unwind, AssertUnwindSafe};

use jvolve::{apply, ApplyOptions, ClassChangeKind, Update, UpdateError};
use jvolve_classfile::{ClassFile, ClassName, MethodRef};
use jvolve_vm::{Value, Vm, VmConfig};

use crate::rng::Rng;
use crate::{panic_message, Family, FuzzFailure, FuzzReport};

/// The mirror model: what the guest program looks like and what its live
/// `Data` object holds.
#[derive(Clone)]
struct Model {
    /// Field name → value held by the live object.
    fields: Vec<(String, i64)>,
    /// Probe multiplier (changes are method-body-only updates).
    mult: i64,
    /// Fresh-field counter, so added fields never collide with deleted ones.
    next_field: usize,
}

impl Model {
    fn new(rng: &mut Rng) -> Model {
        let n = rng.range(1, 4);
        Model {
            fields: (0..n).map(|i| (format!("f{i}"), rng.range(1, 100) as i64)).collect(),
            mult: 1,
            next_field: n,
        }
    }

    /// Expected `Main.probe()` for the live object.
    fn probe(&self) -> i64 {
        self.mult * self.fields.iter().map(|(_, v)| v).sum::<i64>()
    }

    /// MJ source for the current program shape. Constructor inits matter
    /// only for objects allocated *after* this release; the live object's
    /// values come from the model.
    fn source(&self) -> String {
        let decls: String =
            self.fields.iter().map(|(f, _)| format!("  field {f}: int;\n")).collect();
        let inits: String = self
            .fields
            .iter()
            .map(|(f, v)| format!(" this.{f} = {v};"))
            .collect();
        let sum = self
            .fields
            .iter()
            .map(|(f, _)| format!("Main.d.{f}"))
            .collect::<Vec<_>>()
            .join(" + ");
        format!(
            "class Data {{\n{decls}  ctor() {{{inits} }}\n}}\n\
             class Main {{\n\
             \x20 static field d: Data;\n\
             \x20 static method setup(): void {{ Main.d = new Data(); }}\n\
             \x20 static method probe(): int {{ return ({sum}) * {}; }}\n\
             }}",
            self.mult
        )
    }

    /// Evolves into the next release: 1–2 random shape changes.
    fn evolve(&self, rng: &mut Rng) -> Model {
        let mut next = self.clone();
        for _ in 0..rng.range(1, 3) {
            match rng.below(3) {
                // Add a field: the live object sees it as 0 (the default
                // transformer copies same-name fields only).
                0 => {
                    let name = format!("f{}", next.next_field);
                    next.next_field += 1;
                    next.fields.push((name, rng.range(1, 100) as i64));
                    let added = next.fields.last_mut().expect("just pushed");
                    added.1 = 0; // live-object value, not the ctor init
                }
                // Delete a field (keep at least one).
                1 if next.fields.len() > 1 => {
                    let at = rng.below(next.fields.len());
                    next.fields.remove(at);
                }
                // Change the probe multiplier (method-body-only).
                _ => next.mult = rng.range(2, 6) as i64,
            }
        }
        next
    }
}

fn probe(vm: &mut Vm) -> i64 {
    match vm.call_static_sync("Main", "probe", &[]) {
        Ok(Some(Value::Int(n))) => n,
        other => panic!("probe returned {other:?}"),
    }
}

/// A fault to inject before the clean release.
enum Fault {
    FlipKind,
    DropPayloadClass,
    DanglingIndirect,
    EmptyTransformers,
    GarbageTransformers,
    RetypedTransformer,
}

impl Fault {
    /// Corrupts `update`; returns which error variant must surface.
    fn inject(&self, update: &mut Update) -> &'static str {
        match self {
            Fault::FlipKind => {
                let d = update
                    .spec
                    .changed
                    .iter_mut()
                    .find(|d| d.kind == ClassChangeKind::ClassUpdate)
                    .expect("fault requires a class update");
                d.kind = ClassChangeKind::MethodBodyOnly;
                "BadSpec"
            }
            Fault::DropPayloadClass => {
                update.new_classes.remove(&ClassName::from("Data"));
                "BadSpec"
            }
            Fault::DanglingIndirect => {
                update.spec.indirect_methods.push(MethodRef::new("Phantom", "walk"));
                "BadSpec"
            }
            Fault::EmptyTransformers => {
                update.set_transformers_source("class JvolveTransformers { }");
                "Compile"
            }
            Fault::GarbageTransformers => {
                update.set_transformers_source("this is not a valid MJ program {{{");
                "Compile"
            }
            Fault::RetypedTransformer => {
                update.set_transformers_source(
                    "class JvolveTransformers {
                       static method jvolve_object_Data(to: Data, from: Data): void { }
                     }",
                );
                "BadTransformer"
            }
        }
    }
}

fn error_variant(e: &UpdateError) -> &'static str {
    match e {
        UpdateError::BadSpec { .. } => "BadSpec",
        UpdateError::Compile(_) => "Compile",
        UpdateError::BadTransformer { .. } => "BadTransformer",
        UpdateError::Timeout { .. } => "Timeout",
        UpdateError::Vm(_) => "Vm",
        UpdateError::Empty => "Empty",
        UpdateError::Unsupported { .. } => "Unsupported",
    }
}

struct StreamVm {
    vm: Vm,
    classes: Vec<ClassFile>,
}

fn boot(lazy: bool, source: &str) -> StreamVm {
    let classes = jvolve_lang::compile(source).expect("generated source compiles");
    let mut vm =
        Vm::new(VmConfig { lazy_migration: lazy, gc_threads: 1, ..VmConfig::small() });
    vm.load_classes(&classes).expect("release 0 loads");
    vm.call_static_sync("Main", "setup", &[]).expect("setup runs");
    StreamVm { vm, classes }
}

pub(crate) fn run(seed: u64, iters: u64) -> Result<FuzzReport, FuzzFailure> {
    let mut report = FuzzReport::default();
    for iter in 0..iters {
        report.iters += 1;
        let mut rng = Rng::for_iter(seed, iter);
        let fail = |message: String| FuzzFailure { family: Family::Stream, seed, iter, message };

        let mut model = Model::new(&mut rng);
        let mut eager = boot(false, &model.source());
        let mut lazy = boot(true, &model.source());
        if probe(&mut eager.vm) != model.probe() {
            return Err(fail("release 0: probe disagrees with the mirror model".into()));
        }

        let releases = rng.range(1, 4);
        for r in 0..releases {
            let next = model.evolve(&mut rng);
            let next_classes =
                jvolve_lang::compile(&next.source()).expect("generated source compiles");
            let prefix = format!("r{r}_");
            let prepare = |current: &[ClassFile]| Update::prepare(current, &next_classes, &prefix);

            // The only diff with no work at all would be an identical
            // model; evolve always changes something, but a deleted field
            // can cancel an added one — skip such no-op releases.
            let update = match prepare(&eager.classes) {
                Ok(u) => u,
                Err(UpdateError::Empty) => continue,
                Err(e) => return Err(fail(format!("release {r}: prepare failed: {e}"))),
            };

            // Optional fault first: corrupted copy, typed abort, rollback.
            let has_class_update =
                update.spec.changed.iter().any(|d| d.kind == ClassChangeKind::ClassUpdate);
            let menu: &[Option<Fault>] = if has_class_update {
                &[
                    None,
                    None,
                    Some(Fault::FlipKind),
                    Some(Fault::DropPayloadClass),
                    Some(Fault::DanglingIndirect),
                    Some(Fault::EmptyTransformers),
                    Some(Fault::GarbageTransformers),
                    Some(Fault::RetypedTransformer),
                ]
            } else {
                &[
                    None,
                    None,
                    Some(Fault::DropPayloadClass),
                    Some(Fault::DanglingIndirect),
                    Some(Fault::GarbageTransformers),
                ]
            };
            let choice = rng.below(menu.len());
            if let Some(fault) = &menu[choice] {
                let mut corrupted = update.clone();
                let expected = fault.inject(&mut corrupted);
                let reg_before = eager.vm.registry().version_fingerprint();
                let heap_before = eager.vm.heap_fingerprint();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    apply(&mut eager.vm, &corrupted, &ApplyOptions::default())
                }));
                match outcome {
                    Err(payload) => {
                        return Err(fail(format!(
                            "release {r}: fault panicked: {}",
                            panic_message(payload)
                        )));
                    }
                    Ok(Ok(_)) => {
                        return Err(fail(format!(
                            "release {r}: corrupted update ({expected}) was accepted"
                        )));
                    }
                    Ok(Err(e)) => {
                        if error_variant(&e) != expected {
                            return Err(fail(format!(
                                "release {r}: expected {expected}, got {e}"
                            )));
                        }
                        if eager.vm.registry().version_fingerprint() != reg_before {
                            return Err(fail(format!(
                                "release {r}: registry fingerprint diverged after abort"
                            )));
                        }
                        if eager.vm.heap_fingerprint() != heap_before {
                            return Err(fail(format!(
                                "release {r}: heap fingerprint diverged after abort"
                            )));
                        }
                        if probe(&mut eager.vm) != model.probe() {
                            return Err(fail(format!(
                                "release {r}: old version broken after abort"
                            )));
                        }
                    }
                }
            }

            // The clean release must commit on both protocols.
            apply(&mut eager.vm, &update, &ApplyOptions::default())
                .map_err(|e| fail(format!("release {r}: eager apply failed: {e}")))?;
            let lazy_update = prepare(&lazy.classes)
                .map_err(|e| fail(format!("release {r}: lazy prepare failed: {e}")))?;
            apply(&mut lazy.vm, &lazy_update, &ApplyOptions::default())
                .map_err(|e| fail(format!("release {r}: lazy apply failed: {e}")))?;
            eager.classes = next_classes.clone();
            lazy.classes = next_classes;
            model = next;

            let got = probe(&mut eager.vm);
            if got != model.probe() {
                return Err(fail(format!(
                    "release {r}: probe {got} disagrees with the mirror model {}",
                    model.probe()
                )));
            }
        }

        // Stream end: the two protocols must have converged.
        let (pe, pl) = (probe(&mut eager.vm), probe(&mut lazy.vm));
        if pe != pl {
            return Err(fail(format!("stream end: eager probe {pe} != lazy probe {pl}")));
        }
        if eager.vm.registry().version_fingerprint() != lazy.vm.registry().version_fingerprint() {
            return Err(fail("stream end: registry fingerprints diverge".into()));
        }
        if eager.vm.heap_fingerprint() != lazy.vm.heap_fingerprint() {
            return Err(fail("stream end: heap fingerprints diverge".into()));
        }
        report.accept();
    }
    Ok(report)
}
