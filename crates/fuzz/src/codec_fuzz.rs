//! Family (a): byte-level mutation of encoded class files.
//!
//! Encode a random class, damage the bytes, and replay through
//! `codec::decode`. The decoder must return a typed [`DecodeError`] or a
//! class — never panic, and never allocate unboundedly from a hostile
//! length prefix (every mutant is at most a few hundred bytes, so any
//! count it can smuggle in is bounded by the remaining-input check).
//! Anything accepted must re-encode canonically: `decode(encode(d)) == d`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use jvolve_classfile::codec;

use crate::rng::Rng;
use crate::{gen, panic_message, Family, FuzzFailure, FuzzReport};

/// Damages `bytes` in place with 1–4 structure-aware mutations.
pub fn mutate_bytes(rng: &mut Rng, bytes: &mut Vec<u8>) {
    for _ in 0..rng.range(1, 5) {
        if bytes.is_empty() {
            bytes.push(rng.byte());
            continue;
        }
        match rng.below(6) {
            // Single bit flip.
            0 => {
                let at = rng.below(bytes.len());
                bytes[at] ^= 1 << rng.below(8);
            }
            // Overwrite one byte.
            1 => {
                let at = rng.below(bytes.len());
                bytes[at] = rng.byte();
            }
            // Truncate.
            2 => bytes.truncate(rng.below(bytes.len())),
            // Extend with random bytes.
            3 => {
                for _ in 0..rng.range(1, 9) {
                    bytes.push(rng.byte());
                }
            }
            // Stamp a 4-byte window with a hostile length prefix.
            4 if bytes.len() >= 4 => {
                let at = rng.below(bytes.len() - 3);
                let v = if rng.bool() { u32::MAX } else { rng.next_u64() as u32 };
                bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
            }
            // Splice: copy one chunk over another.
            _ => {
                let len = rng.range(1, 9).min(bytes.len());
                let src = rng.below(bytes.len() - len + 1);
                let dst = rng.below(bytes.len() - len + 1);
                let chunk: Vec<u8> = bytes[src..src + len].to_vec();
                bytes[dst..dst + len].copy_from_slice(&chunk);
            }
        }
    }
}

pub(crate) fn run(seed: u64, iters: u64) -> Result<FuzzReport, FuzzFailure> {
    let mut report = FuzzReport::default();
    let fail = |iter: u64, message: String| FuzzFailure {
        family: Family::Codec,
        seed,
        iter,
        message,
    };
    for iter in 0..iters {
        report.iters += 1;
        let mut rng = Rng::for_iter(seed, iter);
        let class = gen::class_file(&mut rng);
        let mut bytes = codec::encode(&class);
        mutate_bytes(&mut rng, &mut bytes);

        match catch_unwind(AssertUnwindSafe(|| codec::decode(&bytes))) {
            Err(payload) => {
                return Err(fail(iter, format!("decode panicked: {}", panic_message(payload))));
            }
            Ok(Err(_typed)) => report.reject(),
            Ok(Ok(decoded)) => {
                // Accepted mutants must re-encode canonically.
                let reencoded = codec::encode(&decoded);
                match codec::decode(&reencoded) {
                    Ok(again) if again == decoded => report.accept(),
                    Ok(_) => {
                        return Err(fail(iter, "re-encode/decode changed the class".into()));
                    }
                    Err(e) => {
                        return Err(fail(iter, format!("accepted class fails to re-decode: {e}")));
                    }
                }
            }
        }
    }
    Ok(report)
}
