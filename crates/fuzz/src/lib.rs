//! Deterministic structure-aware fuzzing of the JVolve update pipeline.
//!
//! The update path is the VM's trust boundary: class-file bytes, the
//! update-spec JSON, and transformer sources all arrive from outside the
//! process. This crate attacks every layer of that boundary with five
//! SplitMix64-driven mutator families, each with a hard oracle:
//!
//! * [`Family::Codec`] — byte-level mutation of `codec::encode` output
//!   replayed through `codec::decode`. Oracle: never a panic, never an
//!   allocation beyond the input size (hostile length prefixes return a
//!   typed `DecodeError`), and anything accepted re-encodes canonically.
//! * [`Family::Spec`] — JSON-level mutation of serialized [`UpdateSpec`]s
//!   (type confusion, deleted/duplicated keys, dangling names, raw text
//!   damage). Oracle: never a panic; anything accepted round-trips.
//! * [`Family::Semantic`] — mutation of *valid* prepared updates (drop or
//!   retype a transformer, flip `ClassChangeKind`, desynchronize spec and
//!   payload, truncate the class batch). Oracle: every rejection is the
//!   expected typed [`UpdateError`] and leaves registry and heap
//!   fingerprints bit-identical; every accepted mutant commits and passes
//!   the eager-vs-lazy differential.
//! * [`Family::Stream`] — random multi-release streams driven end-to-end
//!   through `UpdateController` against a Rust-side mirror model, with
//!   fault injection at the validation and install phase boundaries, and
//!   an eager VM vs lazy VM equivalence check at stream end.
//! * [`Family::Upt`] — random MJ program pairs through the update
//!   preparation tool with clean and hostile options (garbage sources,
//!   identical versions, broken or mis-targeted per-class overrides).
//!   Oracle: never a panic, every rejection the expected typed
//!   `UptError`, and everything the UPT accepts validates and commits on
//!   lockstep eager and lazy VMs with mirror-model-predicted state.
//!
//! Every iteration derives its randomness from `(seed, iter)`, so any
//! failure is replayed with `fuzz_run --family <f> --seed <s> --iters 1`
//! after offsetting the seed, or exactly via the printed reproducer. The
//! committed corpus (`corpus/*.json`) replays every crash the fuzzer has
//! found as a permanent regression test (`tests/corpus.rs`).

use std::fmt;

pub mod corpus;
pub mod gen;
pub mod rng;

mod codec_fuzz;
mod semantic_fuzz;
mod spec_fuzz;
mod stream_fuzz;
mod upt_fuzz;

/// One mutator family.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Family {
    /// Byte-level classfile codec mutations.
    Codec,
    /// JSON-level update-spec mutations.
    Spec,
    /// Semantic mutations of valid prepared updates.
    Semantic,
    /// End-to-end release streams with fault injection.
    Stream,
    /// Random program pairs through the update preparation tool.
    Upt,
}

impl Family {
    /// All families, in execution order.
    pub const ALL: [Family; 5] =
        [Family::Codec, Family::Spec, Family::Semantic, Family::Stream, Family::Upt];

    pub fn name(self) -> &'static str {
        match self {
            Family::Codec => "codec",
            Family::Spec => "spec",
            Family::Semantic => "semantic",
            Family::Stream => "stream",
            Family::Upt => "upt",
        }
    }

    /// Parses a family name as used by `fuzz_run --family`.
    pub fn parse(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == s)
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a completed (failure-free) fuzz run observed.
#[derive(Clone, Copy, Debug, Default)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iters: u64,
    /// Mutants the pipeline accepted (and that passed the accept-oracles).
    pub accepted: u64,
    /// Mutants rejected with a typed error (the expected common case).
    pub rejected: u64,
}

impl FuzzReport {
    fn accept(&mut self) {
        self.accepted += 1;
    }
    fn reject(&mut self) {
        self.rejected += 1;
    }
}

/// An oracle violation: a panic, a wrong error type, a fingerprint
/// divergence, or a differential mismatch.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Family that found it.
    pub family: Family,
    /// Run seed.
    pub seed: u64,
    /// Iteration within the run.
    pub iter: u64,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} family failed at seed {} iter {}: {}\n  reproduce: fuzz_run --family {} --seed {} --iters {}",
            self.family, self.seed, self.iter, self.message, self.family, self.seed, self.iter + 1
        )
    }
}

impl std::error::Error for FuzzFailure {}

/// Runs `iters` iterations of one family.
///
/// # Errors
///
/// The first oracle violation, with a reproducer command line.
pub fn run_family(family: Family, seed: u64, iters: u64) -> Result<FuzzReport, FuzzFailure> {
    match family {
        Family::Codec => codec_fuzz::run(seed, iters),
        Family::Spec => spec_fuzz::run(seed, iters),
        Family::Semantic => semantic_fuzz::run(seed, iters),
        Family::Stream => stream_fuzz::run(seed, iters),
        Family::Upt => upt_fuzz::run(seed, iters),
    }
}

/// Extracts a printable message from a `catch_unwind` payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
