//! `fuzz_run` — deterministic fuzzing of the update pipeline.
//!
//! ```text
//! fuzz_run [--seed N] [--iters N] [--family codec|spec|semantic|stream|upt|all]
//!          [--replay <corpus-file-or-dir>]
//! ```
//!
//! Without `--replay`, runs `--iters` iterations (default 1000) of the
//! selected family (default `all`, meaning the full budget per family)
//! from `--seed` (default 1). With `--replay`, replays one committed
//! corpus entry — or every entry in a directory — instead; `--replay`
//! conflicts with the generation flags.
//!
//! Exit codes: 0 on success, 1 on an oracle violation (a reproducer
//! command line is printed), 2 on a usage error. Unknown flags, missing
//! or malformed values, and duplicate flags are all rejected with the
//! usage message.

use std::process::ExitCode;

use jvolve_fuzz::{corpus, run_family, Family, FuzzReport};

const USAGE: &str = "usage: fuzz_run [--seed N] [--iters N] \
     [--family codec|spec|semantic|stream|upt|all] [--replay <corpus-file-or-dir>]";

struct Cli {
    seed: u64,
    iters: u64,
    families: Vec<Family>,
    replay: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut values: [(&str, Option<String>); 4] =
        [("--seed", None), ("--iters", None), ("--family", None), ("--replay", None)];

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if !arg.starts_with("--") {
            return Err(format!("unexpected argument {arg}"));
        }
        let slot = values
            .iter_mut()
            .find(|(name, _)| *name == arg)
            .map(|(_, slot)| slot)
            .ok_or_else(|| format!("unknown flag {arg}"))?;
        if slot.is_some() {
            return Err(format!("duplicate flag {arg}"));
        }
        let v = args.get(i + 1).ok_or_else(|| format!("{arg} needs a value"))?;
        if v.starts_with("--") {
            return Err(format!("{arg} needs a value, got flag {v}"));
        }
        *slot = Some(v.clone());
        i += 2;
    }
    let mut take = |name: &str| {
        values.iter_mut().find(|(n, _)| *n == name).expect("known flag").1.take()
    };
    let seed = take("--seed");
    let iters = take("--iters");
    let family = take("--family");
    let replay = take("--replay");

    if replay.is_some() {
        for (flag, set) in
            [("--seed", seed.is_some()), ("--iters", iters.is_some()), ("--family", family.is_some())]
        {
            if set {
                return Err(format!("{flag} conflicts with --replay"));
            }
        }
    }
    let families = match family.as_deref() {
        None | Some("all") => Family::ALL.to_vec(),
        Some(name) => {
            vec![Family::parse(name).ok_or_else(|| format!("unknown family {name}"))?]
        }
    };
    Ok(Cli {
        seed: parse_num("--seed", seed)?.unwrap_or(1),
        iters: parse_num("--iters", iters)?.unwrap_or(1000),
        families,
        replay,
    })
}

fn parse_num(flag: &str, value: Option<String>) -> Result<Option<u64>, String> {
    value
        .map(|v| v.parse().map_err(|_| format!("{flag} expects a number, got {v}")))
        .transpose()
}

fn print_report(label: &str, report: &FuzzReport) {
    println!(
        "{label}: {} iters, {} accepted, {} rejected (typed), 0 panics",
        report.iters, report.accepted, report.rejected
    );
}

fn replay(path: &str) -> ExitCode {
    let path = std::path::Path::new(path);
    let entries = if path.is_dir() {
        match corpus::load_dir(path) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("fuzz_run: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))
            .and_then(|text| {
                corpus::CorpusEntry::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
            }) {
            Ok(entry) => vec![entry],
            Err(e) => {
                eprintln!("fuzz_run: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if entries.is_empty() {
        eprintln!("fuzz_run: no corpus entries under {}", path.display());
        return ExitCode::FAILURE;
    }
    for entry in &entries {
        match entry.replay() {
            Ok(report) => print_report(&format!("replay {}", entry.name), &report),
            Err(failure) => {
                eprintln!("fuzz_run: regression {} returned:\n{failure}", entry.name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("fuzz_run: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &cli.replay {
        return replay(path);
    }
    for family in cli.families {
        match run_family(family, cli.seed, cli.iters) {
            Ok(report) => print_report(family.name(), &report),
            Err(failure) => {
                eprintln!("fuzz_run: {failure}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
