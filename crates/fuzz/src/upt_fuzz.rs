//! Family (e): random program pairs through the update preparation tool.
//!
//! A generated guest program (`Data` with random int fields, a `Main`
//! holder whose probe sums them) evolves one release; the *pair* is fed
//! to `jvolve_upt::prepare_sources` with randomly chosen options — clean,
//! with a valid per-class override, with a blacklist, or hostile
//! (identical versions, garbage sources, overrides naming unknown
//! classes, syntactically broken or mis-typed overrides). Oracles:
//!
//! * the UPT never panics: every failure is a typed [`UptError`] of the
//!   *expected* variant for the injected hostility;
//! * everything the UPT accepts is genuinely applicable: the emitted
//!   update passes [`jvolve::validate_update`] and commits on lockstep
//!   eager and lazy VMs with the probe value the mirror model predicts
//!   and bit-identical registry and heap fingerprints.

use std::panic::{catch_unwind, AssertUnwindSafe};

use jvolve::{apply, validate_update, ApplyOptions, ClassChangeKind};
use jvolve_classfile::MethodRef;
use jvolve_upt::{prepare_sources, PreparedRelease, UptError, UptOptions};
use jvolve_vm::{Value, Vm, VmConfig};

use crate::rng::Rng;
use crate::{panic_message, Family, FuzzFailure, FuzzReport};

/// Version prefix used by every generated release.
const PREFIX: &str = "u1_";

/// The mirror model: program shape plus the live `Data` object's values.
#[derive(Clone)]
struct Model {
    /// Field name → value held by the live object.
    fields: Vec<(String, i64)>,
    /// Probe multiplier (changes are method-body-only updates).
    mult: i64,
    /// Whether the unreferenced `Aux` class exists in this release.
    aux: bool,
    /// Fresh-field counter, so added fields never collide with deleted ones.
    next_field: usize,
}

/// What one evolution step did — decides which hostile options make sense.
#[derive(Clone, Copy)]
struct Evolution {
    /// `Data`'s field layout changed (a class update with a transformer).
    layout_changed: bool,
}

impl Model {
    fn new(rng: &mut Rng) -> Model {
        let n = rng.range(1, 4);
        Model {
            fields: (0..n).map(|i| (format!("f{i}"), rng.range(1, 100) as i64)).collect(),
            mult: 1,
            aux: false,
            next_field: n,
        }
    }

    /// Expected `Main.probe()` for the live object.
    fn probe(&self) -> i64 {
        self.mult * self.fields.iter().map(|(_, v)| v).sum::<i64>()
    }

    /// MJ source for the current program shape.
    fn source(&self) -> String {
        let decls: String =
            self.fields.iter().map(|(f, _)| format!("  field {f}: int;\n")).collect();
        let inits: String =
            self.fields.iter().map(|(f, v)| format!(" this.{f} = {v};")).collect();
        let sum = self
            .fields
            .iter()
            .map(|(f, _)| format!("Main.d.{f}"))
            .collect::<Vec<_>>()
            .join(" + ");
        let aux = if self.aux {
            "class Aux {\n  static method ping(): int { return 1; }\n}\n"
        } else {
            ""
        };
        format!(
            "class Data {{\n{decls}  ctor() {{{inits} }}\n}}\n{aux}\
             class Main {{\n\
             \x20 static field d: Data;\n\
             \x20 static method setup(): void {{ Main.d = new Data(); }}\n\
             \x20 static method probe(): int {{ return ({sum}) * {}; }}\n\
             }}",
            self.mult
        )
    }

    /// Evolves into the next release: 1–2 random shape changes.
    fn evolve(&self, rng: &mut Rng) -> (Model, Evolution) {
        let mut next = self.clone();
        let mut evo = Evolution { layout_changed: false };
        for _ in 0..rng.range(1, 3) {
            match rng.below(4) {
                // Add a field: the live object sees it as 0 (the default
                // transformer copies same-name fields only).
                0 => {
                    let name = format!("f{}", next.next_field);
                    next.next_field += 1;
                    next.fields.push((name, 0));
                    evo.layout_changed = true;
                }
                // Delete a field (keep at least one).
                1 if next.fields.len() > 1 => {
                    let at = rng.below(next.fields.len());
                    next.fields.remove(at);
                    evo.layout_changed = true;
                }
                // Add or delete the unreferenced Aux class.
                2 => next.aux = !next.aux,
                // Change the probe multiplier (method-body-only).
                _ => next.mult = rng.range(2, 6) as i64,
            }
        }
        (next, evo)
    }

    /// A hand-written — but behaviorally default — override for `Data`:
    /// copies every field both versions share, exactly what the generated
    /// default does, so the mirror model is unaffected.
    fn override_for(&self, next: &Model) -> String {
        let copies: String = next
            .fields
            .iter()
            .filter(|(f, _)| self.fields.iter().any(|(of, _)| of == f))
            .map(|(f, _)| format!(" to.{f} = from.{f};"))
            .collect();
        format!(
            "  static method jvolve_class_Data(): void {{ }}\n\
             \x20 static method jvolve_object_Data(to: Data, from: {PREFIX}Data): void {{{copies} }}\n"
        )
    }
}

fn probe(vm: &mut Vm) -> i64 {
    match vm.call_static_sync("Main", "probe", &[]) {
        Ok(Some(Value::Int(n))) => n,
        other => panic!("probe returned {other:?}"),
    }
}

fn boot(lazy: bool, source: &str) -> Vm {
    let classes = jvolve_lang::compile(source).expect("generated source compiles");
    let mut vm = Vm::new(VmConfig { lazy_migration: lazy, gc_threads: 1, ..VmConfig::small() });
    vm.load_classes(&classes).expect("release 0 loads");
    vm.call_static_sync("Main", "setup", &[]).expect("setup runs");
    vm
}

/// One preparation scenario and the [`UptError`] variant it must produce
/// (`None` means the UPT must accept).
enum Scenario {
    Clean,
    ValidOverride,
    Blacklist,
    IdenticalPair,
    GarbageNew,
    GarbageOld,
    UnknownOverrideClass,
    BrokenOverride,
    RetypedOverride,
}

impl Scenario {
    fn label(&self) -> &'static str {
        match self {
            Scenario::Clean => "clean",
            Scenario::ValidOverride => "valid-override",
            Scenario::Blacklist => "blacklist",
            Scenario::IdenticalPair => "identical-pair",
            Scenario::GarbageNew => "garbage-new",
            Scenario::GarbageOld => "garbage-old",
            Scenario::UnknownOverrideClass => "unknown-override-class",
            Scenario::BrokenOverride => "broken-override",
            Scenario::RetypedOverride => "retyped-override",
        }
    }
}

fn error_variant(e: &UptError) -> &'static str {
    match e {
        UptError::Io { .. } => "Io",
        UptError::Compile { which, .. } => {
            if *which == "old" {
                "Compile(old)"
            } else {
                "Compile(new)"
            }
        }
        UptError::Prepare(_) => "Prepare",
        UptError::OverrideUnknownClass { .. } => "OverrideUnknownClass",
        UptError::BadTransformers { .. } => "BadTransformers",
        UptError::Bundle(_) => "Bundle",
    }
}

pub(crate) fn run(seed: u64, iters: u64) -> Result<FuzzReport, FuzzFailure> {
    let mut report = FuzzReport::default();
    for iter in 0..iters {
        report.iters += 1;
        let mut rng = Rng::for_iter(seed, iter);
        let fail = |message: String| FuzzFailure { family: Family::Upt, seed, iter, message };

        let model = Model::new(&mut rng);
        let old_src = model.source();
        // Evolution steps can cancel out (toggle Aux twice, add then
        // delete the same field); re-roll until the release is a real
        // change, so every scenario's expected outcome is well-defined.
        let (next, evo) = loop {
            let (next, evo) = model.evolve(&mut rng);
            if next.source() != old_src {
                break (next, evo);
            }
        };
        let new_src = next.source();

        // Hostile override mutations of `Data` only make sense when the
        // release actually class-updates it.
        let menu: &[Scenario] = if evo.layout_changed {
            &[
                Scenario::Clean,
                Scenario::Clean,
                Scenario::ValidOverride,
                Scenario::Blacklist,
                Scenario::IdenticalPair,
                Scenario::GarbageNew,
                Scenario::GarbageOld,
                Scenario::UnknownOverrideClass,
                Scenario::BrokenOverride,
                Scenario::RetypedOverride,
            ]
        } else {
            &[
                Scenario::Clean,
                Scenario::Clean,
                Scenario::Blacklist,
                Scenario::IdenticalPair,
                Scenario::GarbageNew,
                Scenario::GarbageOld,
                Scenario::UnknownOverrideClass,
            ]
        };
        let scenario = &menu[rng.below(menu.len())];
        let label = scenario.label();

        let mut opts = UptOptions::with_prefix(PREFIX);
        let (old_input, new_input): (&str, &str) = match scenario {
            Scenario::Clean => (&old_src, &new_src),
            Scenario::ValidOverride => {
                opts.overrides.insert("Data".to_string(), model.override_for(&next));
                (&old_src, &new_src)
            }
            Scenario::Blacklist => {
                // Resolvable, never on stack once setup has returned.
                opts.blacklist.push(MethodRef::new("Main", "setup"));
                (&old_src, &new_src)
            }
            Scenario::IdenticalPair => (&old_src, &old_src),
            Scenario::GarbageNew => (&old_src, "class Broken { this is not MJ }"),
            Scenario::GarbageOld => ("}{ not a program", &new_src),
            Scenario::UnknownOverrideClass => {
                opts.overrides.insert("Ghost".to_string(), "  // nothing\n".to_string());
                (&old_src, &new_src)
            }
            Scenario::BrokenOverride => {
                opts.overrides
                    .insert("Data".to_string(), "  static method jvolve_object_Data(".to_string());
                (&old_src, &new_src)
            }
            Scenario::RetypedOverride => {
                // Wrong `from` type: the signature check must reject it.
                opts.overrides.insert(
                    "Data".to_string(),
                    "  static method jvolve_class_Data(): void { }\n\
                     \x20 static method jvolve_object_Data(to: Data, from: Data): void { }\n"
                        .to_string(),
                );
                (&old_src, &new_src)
            }
        };

        let expected_error = match scenario {
            Scenario::Clean | Scenario::ValidOverride | Scenario::Blacklist => None,
            Scenario::IdenticalPair => Some("Prepare"),
            Scenario::GarbageNew => Some("Compile(new)"),
            Scenario::GarbageOld => Some("Compile(old)"),
            Scenario::UnknownOverrideClass => Some("OverrideUnknownClass"),
            Scenario::BrokenOverride | Scenario::RetypedOverride => Some("BadTransformers"),
        };

        let prepared: Result<Result<PreparedRelease, UptError>, _> =
            catch_unwind(AssertUnwindSafe(|| prepare_sources(old_input, new_input, &opts)));
        let prepared = match prepared {
            Err(payload) => {
                return Err(fail(format!("{label}: UPT panicked: {}", panic_message(payload))));
            }
            Ok(r) => r,
        };

        match (expected_error, prepared) {
            (Some(expected), Err(e)) => {
                if error_variant(&e) != expected {
                    return Err(fail(format!("{label}: expected {expected}, got {e}")));
                }
                report.reject();
            }
            (Some(expected), Ok(_)) => {
                return Err(fail(format!("{label}: hostile input accepted (expected {expected})")));
            }
            (None, Err(e)) => {
                return Err(fail(format!("{label}: clean pair rejected: {e}")));
            }
            (None, Ok(release)) => {
                // Sanity on the classification the UPT reports.
                if evo.layout_changed
                    && !release
                        .update
                        .spec
                        .changed
                        .iter()
                        .any(|d| d.kind == ClassChangeKind::ClassUpdate)
                {
                    return Err(fail(format!("{label}: layout change not classified as ClassUpdate")));
                }
                if matches!(scenario, Scenario::Blacklist) {
                    let rs = release.restricted();
                    if !rs.blacklisted.contains(&MethodRef::new("Main", "setup")) {
                        return Err(fail(format!("{label}: blacklist missing from restricted set")));
                    }
                }
                // Everything the UPT emits must be applicable as-is.
                if let Err(e) = validate_update(&release.update) {
                    return Err(fail(format!("{label}: emitted update fails validation: {e}")));
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut eager = boot(false, &old_src);
                    let mut lazy = boot(true, &old_src);
                    apply(&mut eager, &release.update, &ApplyOptions::default())
                        .map_err(|e| format!("eager apply failed: {e}"))?;
                    apply(&mut lazy, &release.update, &ApplyOptions::default())
                        .map_err(|e| format!("lazy apply failed: {e}"))?;
                    let (pe, pl) = (probe(&mut eager), probe(&mut lazy));
                    if pe != next.probe() {
                        return Err(format!("probe {pe}, mirror model expected {}", next.probe()));
                    }
                    if pl != pe {
                        return Err(format!("eager probe {pe} != lazy probe {pl}"));
                    }
                    if eager.registry().version_fingerprint() != lazy.registry().version_fingerprint()
                    {
                        return Err("registry fingerprints diverge".to_string());
                    }
                    if eager.heap_fingerprint() != lazy.heap_fingerprint() {
                        return Err("heap fingerprints diverge".to_string());
                    }
                    Ok(())
                }));
                match outcome {
                    Err(payload) => {
                        return Err(fail(format!(
                            "{label}: apply panicked: {}",
                            panic_message(payload)
                        )));
                    }
                    Ok(Err(msg)) => return Err(fail(format!("{label}: {msg}"))),
                    Ok(Ok(())) => report.accept(),
                }
            }
        }
    }
    Ok(report)
}
