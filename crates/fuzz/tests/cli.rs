//! `fuzz_run` command-line contract: unknown, duplicate, malformed, and
//! conflicting flags are rejected with the usage message and exit code 2.

use std::process::Command;

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fuzz_run"))
        .args(args)
        .output()
        .expect("spawn fuzz_run");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn rejects_bad_usage_with_exit_2() {
    let cases: &[(&[&str], &str)] = &[
        (&["--bogus", "1"], "unknown flag --bogus"),
        (&["--seed", "1", "--seed", "2"], "duplicate flag --seed"),
        (&["--seed"], "--seed needs a value"),
        (&["--seed", "--iters"], "--seed needs a value, got flag"),
        (&["--seed", "one"], "--seed expects a number"),
        (&["--iters", "many"], "--iters expects a number"),
        (&["--family", "jpeg"], "unknown family jpeg"),
        (&["--seed", "1", "--replay", "x.json"], "--seed conflicts with --replay"),
        (&["--family", "codec", "--replay", "x.json"], "--family conflicts with --replay"),
        (&["stray"], "unexpected argument stray"),
    ];
    for (args, needle) in cases {
        let (code, _, stderr) = run(args);
        assert_eq!(code, 2, "{args:?} must exit 2; stderr: {stderr}");
        assert!(stderr.contains(needle), "{args:?}: expected {needle:?} in {stderr:?}");
        assert!(stderr.contains("usage:"), "{args:?}: usage must be printed");
    }
}

#[test]
fn runs_a_small_budget_on_every_family() {
    let (code, stdout, stderr) = run(&["--seed", "1", "--iters", "25"]);
    assert_eq!(code, 0, "stderr: {stderr}");
    for family in ["codec", "spec", "semantic", "stream", "upt"] {
        assert!(
            stdout.contains(&format!("{family}: 25 iters")),
            "missing {family} report in {stdout:?}"
        );
        assert!(stdout.contains("0 panics"), "report must end in 0 panics");
    }
}

#[test]
fn runs_a_single_family() {
    let (code, stdout, stderr) = run(&["--family", "codec", "--iters", "50"]);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("codec: 50 iters"), "stdout: {stdout:?}");
    assert!(!stdout.contains("spec:"), "only the selected family must run");
}

#[test]
fn replays_the_committed_corpus_from_the_cli() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let (code, stdout, stderr) = run(&["--replay", dir]);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("replay codec-count-inflation"), "stdout: {stdout:?}");
}

#[test]
fn replay_of_a_missing_file_fails_with_exit_1() {
    let (code, _, stderr) = run(&["--replay", "/nonexistent/corpus.json"]);
    assert_eq!(code, 1, "stderr: {stderr}");
    assert!(stderr.contains("fuzz_run:"), "stderr: {stderr:?}");
}
