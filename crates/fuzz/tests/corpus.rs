//! Replays the committed regression corpus on every `cargo test`, so a
//! bug the fuzzer once found can never silently return.

use jvolve_fuzz::corpus;

#[test]
fn every_committed_entry_replays_green() {
    let entries =
        corpus::load_dir(&corpus::default_dir()).expect("corpus directory loads");
    assert!(!entries.is_empty(), "the committed corpus must not be empty");
    for entry in &entries {
        let report = entry.replay().unwrap_or_else(|failure| {
            panic!("regression {} has returned:\n{failure}", entry.name)
        });
        assert_eq!(report.iters, entry.iters, "{}: replay budget drifted", entry.name);
    }
}

#[test]
fn entry_parser_rejects_malformed_entries() {
    for (text, why) in [
        ("not json", "parse failure"),
        ("{}", "missing name"),
        (r#"{"name":"x","family":"jpeg","seed":"1","iters":"1","description":"d"}"#, "bad family"),
        (r#"{"name":"x","family":"codec","seed":1,"iters":"1","description":"d"}"#, "numeric seed"),
        (r#"{"name":"x","family":"codec","seed":"-1","iters":"1","description":"d"}"#, "negative"),
    ] {
        assert!(corpus::CorpusEntry::from_json(text).is_err(), "must reject: {why}");
    }
}
