#!/usr/bin/env bash
# Tier-1 gate: release build, full workspace test suite, and the quick
# GC-pause regression check against the committed baseline
# (results/BENCH_gc.json). Run from the repository root:
#
#   scripts/tier1.sh
#
# Pass --skip-bench to skip the pause-time gate (e.g. on heavily loaded
# CI machines where even best-of-N timing is meaningless).
set -euo pipefail
cd "$(dirname "$0")/.."

skip_bench=0
for arg in "$@"; do
    case "$arg" in
        --skip-bench) skip_bench=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo clippy (workspace, warnings denied) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo test (workspace) =="
cargo test -q --workspace

# The parallel update-GC differential oracle: serial vs gc_threads in
# {2, 4, 7} must produce bit-identical heaps, logs, and stats. Part of
# the workspace run above, but named explicitly so a gate failure here
# is unambiguous in CI logs.
echo "== tier-1: parallel update-GC differential oracle (gc_threads 2/4/7) =="
cargo test -q --test differential

# The inline-cache differential oracle: caches on vs off must be
# observationally identical — same heap, registry, events, and stats —
# across a full update and across a rolled-back one.
echo "== tier-1: inline-cache differential oracle (caches on/off, update + rollback) =="
cargo test -q --test differential inline_caches_are_observationally_invisible

# The template-JIT differential oracle: jit on vs off must be
# observationally identical — same heap/registry fingerprints,
# transformer traces, retired steps, and slice counts — across eager,
# lazy, and rolled-back updates, with fused code actually engaged.
echo "== tier-1: template-JIT differential oracle (jit on/off, eager/lazy/rollback) =="
cargo test -q --test differential jit_tier_is_observationally_invisible

# The lazy-migration differential oracle: a lazily committed update must
# be observationally identical to the eager one under arbitrary
# interleavings of guest execution, scavenger steps, and full GCs.
echo "== tier-1: lazy-migration differential oracle (eager vs lazy, interleaved) =="
cargo test -q --test lazy_differential

# Fleet fault injection: a mid-roll install failure or health-check
# timeout must roll the whole fleet back to bit-identical registry
# fingerprints with zero dropped or incorrect responses.
echo "== tier-1: fleet fault-injection rollback oracle (install failure + health timeout) =="
cargo test -q -p jvolve-apps --test fleet_faults

# Fuzz smoke: a fixed-seed, bounded-budget pass of all five mutator
# families over the untrusted-update path (typed rejections only,
# fingerprint-convergent aborts), then a replay of the committed
# regression corpus so no fixed crash can silently return.
echo "== tier-1: adversarial update fuzz smoke (all families, fixed seed) =="
cargo run --release -q -p jvolve-fuzz --bin fuzz_run -- --seed 1 --iters 250
echo "== tier-1: fuzz regression-corpus replay =="
cargo run --release -q -p jvolve-fuzz --bin fuzz_run -- --replay crates/fuzz/corpus

if [ "$skip_bench" = 0 ]; then
    echo "== tier-1: GC pause regression check =="
    cargo run --release -q -p jvolve-bench --bin gcbench -- --check --iters 5
    # interpbench --check also enforces the jit gates: jit_on >= 2x
    # caches_on (best-of-N), and jit_on_updated within the regression
    # limit of warm jit_on.
    echo "== tier-1: interpreter dispatch + jit tier throughput check =="
    cargo run --release -q -p jvolve-bench --bin interpbench -- --check --iters 5
    echo "== tier-1: lazy migration pause + steady-state check =="
    cargo run --release -q -p jvolve-bench --bin lazybench -- --check --iters 5
    echo "== tier-1: fleet throughput + rolling-update integrity check =="
    cargo run --release -q -p jvolve-bench --bin fleetbench -- --check --iters 5
    echo "== tier-1: UPT release-stream integrity + pause check =="
    cargo run --release -q -p jvolve-bench --bin streambench -- --check --iters 5
else
    echo "== tier-1: GC pause regression check skipped (--skip-bench) =="
    echo "== tier-1: interpreter dispatch + jit tier throughput check skipped (--skip-bench) =="
    echo "== tier-1: lazy migration pause + steady-state check skipped (--skip-bench) =="
    echo "== tier-1: fleet throughput + rolling-update integrity check skipped (--skip-bench) =="
    echo "== tier-1: UPT release-stream integrity + pause check skipped (--skip-bench) =="
fi

echo "== tier-1: OK =="
