//! The update the paper *couldn't* do — applied.
//!
//! Webserver 5.1.2 → 5.1.3 changes the always-on-stack accept loop, so
//! JVolve's safe point never arrives (see `examples/failed_update.rs`).
//! The paper's §3.5 sketches the fix as future work: extend OSR to
//! changed methods, mapping the active pc and stack frame to the new
//! version, as UpStare does for C. This reproduction implements that
//! extension, deriving the pc map automatically by aligning the old and
//! new bytecode.
//!
//! Run with: `cargo run --example impossible_update`

use jvolve_repro::apps::harness::{boot, prepare_next};
use jvolve_repro::apps::workload::one_shot;
use jvolve_repro::apps::{AppInstance, GuestApp, Webserver};
use jvolve_repro::dsu::{apply, ApplyOptions};

fn main() {
    let app = Webserver;
    let versions = app.versions();
    let from = versions.iter().position(|v| v.label == "5.1.2").expect("5.1.2 exists");

    println!("booting webserver {} ...", versions[from].label);
    let mut vm = boot(&app, from);
    let resp = one_shot(&mut vm, app.port(), "GET /index.html", 20_000).expect("serves");
    println!("serving: {:?}", resp.0);

    println!("\napplying 5.1.2 -> 5.1.3 with active-method migration (paper §3.5) ...");
    let update = prepare_next(&app, from);
    let opts = ApplyOptions {
        timeout_slices: 3_000,
        migrate_active_methods: true,
        ..ApplyOptions::default()
    };
    let stats = apply(&mut vm, &update, &opts).expect("the 'impossible' update applies");
    println!(
        "applied: {} active frames migrated to their new method versions, pause {:?}",
        stats.active_migrations, stats.total_time
    );

    // Prove the new 5.1.3 code is live inside the *migrated* loops.
    let ok = one_shot(&mut vm, app.port(), "GET /index.html", 40_000).expect("serves");
    let denied = one_shot(&mut vm, app.port(), "GET /../secret", 40_000).expect("responds");
    println!("\nafter update: {:?} / {:?}", ok.0, denied.0);
    assert!(ok.0.starts_with("200"));
    assert!(denied.0.starts_with("403"), "the new request filter runs");
    let accepted = vm.read_static("ThreadedServer", "accepted");
    println!(
        "the migrated accept loop has counted {accepted} connections through \
         the field added by 5.1.3"
    );
}
