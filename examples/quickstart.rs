//! Quickstart: the paper's §2.3 example — add a field to a `List` class
//! and update the running program, transforming every live instance.
//!
//! Run with: `cargo run --example quickstart`

use jvolve_repro::dsu::{apply, ApplyOptions, Update};
use jvolve_repro::vm::{Value, Vm, VmConfig};

fn main() {
    // Version 1: a linked list without the `x` field.
    let v1 = jvolve_repro::lang::compile(
        "class List {
           field next: List;
           ctor(n: List) { this.next = n; }
           method length(): int {
             if (this.next == null) { return 1; }
             return 1 + this.next.length();
           }
         }
         class Program {
           static field head: List;
           static method build(): void {
             Program.head = new List(new List(new List(null)));
           }
           static method len(): int { return Program.head.length(); }
         }",
    )
    .expect("v1 compiles");

    // Version 2: `List` gains an int field `x` (paper §2.3: the default
    // transformer keeps `next` and zeroes `x`).
    let v2 = jvolve_repro::lang::compile(
        "class List {
           field next: List;
           field x: int;
           ctor(n: List) { this.next = n; this.x = 0; }
           method length(): int {
             if (this.next == null) { return 1; }
             return 1 + this.next.length();
           }
           method sumX(): int {
             if (this.next == null) { return this.x; }
             return this.x + this.next.sumX();
           }
         }
         class Program {
           static field head: List;
           static method build(): void {
             Program.head = new List(new List(new List(null)));
           }
           static method len(): int { return Program.head.length(); }
           static method sum(): int { return Program.head.sumX(); }
         }",
    )
    .expect("v2 compiles");

    // Start the program on the VM and build some state.
    let mut vm = Vm::new(VmConfig::small());
    vm.load_classes(&v1).expect("v1 loads");
    vm.call_static_sync("Program", "build", &[]).expect("build runs");
    let len = vm.call_static_sync("Program", "len", &[]).expect("len runs");
    println!("v1: list length = {:?}", len);

    // Prepare the update. The UPT diffs the versions, classifies the
    // changes, and generates default transformers.
    let update = Update::prepare(&v1, &v2, "v1_").expect("update is non-empty");
    println!("\nupdate specification:\n{}", update.spec.to_json());
    println!("generated transformers:\n{}", update.transformers_source);

    // Apply it to the running VM: safe point, class installation, update
    // GC, transformers.
    let stats = apply(&mut vm, &update, &ApplyOptions::default()).expect("update applies");
    println!(
        "applied: {} objects transformed, pause = {:?}",
        stats.objects_transformed, stats.total_time
    );

    // The same list survived — with the new field, zero-initialized.
    let len = vm.call_static_sync("Program", "len", &[]).expect("len runs");
    let sum = vm.call_static_sync("Program", "sum", &[]).expect("sum runs");
    println!("v2: list length = {:?} (state preserved), sum of new x fields = {:?}", len, sum);
    assert_eq!(len, Some(Value::Int(3)));
    assert_eq!(sum, Some(Value::Int(0)));
}
