//! The paper's running example (Figures 2 and 3), live: update the email
//! server from 1.3.1 to 1.3.2 while it runs. `User.forwardAddresses`
//! changes from `String[]` to `EmailAddress[]`; the developer-customized
//! transformer splits each stored string at `@` and builds the new
//! objects — no state is lost and no session is dropped.
//!
//! Run with: `cargo run --example emailserver_update`

use jvolve_repro::apps::harness::{attempt_update, bench_apply_options, boot};
use jvolve_repro::apps::workload::scripted_session;
use jvolve_repro::apps::{Emailserver, GuestApp};

fn main() {
    let app = Emailserver;
    let versions = app.versions();
    let from = versions.iter().position(|v| v.label == "1.3.1").expect("1.3.1 exists");

    println!("booting emailserver {} ...", versions[from].label);
    let mut vm = boot(&app, from);

    // Alice's account carries forwarded addresses stored as strings.
    let before = scripted_session(&mut vm, 1100, &["USER alice", "FWD", "QUIT"], 50_000)
        .expect("POP session works");
    println!("before update: USER alice -> {:?}", before);

    // The 1.3.2 update ships the Figure 3 transformer.
    println!("\napplying 1.3.1 -> 1.3.2 (class update: User, new class EmailAddress) ...");
    let (outcome, stats) = attempt_update(&mut vm, &app, from, &bench_apply_options());
    println!("outcome: {outcome}");
    let stats = stats.expect("update applied");
    println!(
        "  {} objects transformed, {} OSR replacements, pause {:?}",
        stats.objects_transformed, stats.osr_replacements, stats.total_time
    );

    // Same data, now held as EmailAddress objects rendered by new code.
    let after = scripted_session(&mut vm, 1100, &["USER alice", "FWD", "QUIT"], 50_000)
        .expect("POP session still works");
    println!("\nafter update:  USER alice -> {:?}", after);
    assert_eq!(before[1], after[1], "forward addresses survived the representation change");
    println!("\nforward addresses were converted String[] -> EmailAddress[] in place.");
}
