//! The paper's *unsupported* update (§4.2): webserver 5.1.2 → 5.1.3
//! changes `ThreadedServer.acceptLoop` (the paper's `acceptSocket`) — a
//! method that is always on some thread's stack. JVolve installs return
//! barriers, waits, and finally aborts at the timeout, leaving the old
//! version running untouched.
//!
//! Run with: `cargo run --example failed_update`

use jvolve_repro::apps::harness::{attempt_update, boot};
use jvolve_repro::apps::workload::one_shot;
use jvolve_repro::apps::{AppInstance, GuestApp, Webserver};
use jvolve_repro::dsu::{ApplyOptions, UpdateOutcome};

fn main() {
    let app = Webserver;
    let versions = app.versions();
    let from = versions.iter().position(|v| v.label == "5.1.2").expect("5.1.2 exists");

    println!("booting webserver {} ...", versions[from].label);
    let mut vm = boot(&app, from);
    let resp = one_shot(&mut vm, app.port(), "GET /index.html", 20_000).expect("serves");
    println!("serving: {:?}", resp.0);

    println!("\nattempting 5.1.2 -> 5.1.3 (changes the always-running accept loop) ...");
    let opts = ApplyOptions { timeout_slices: 1_000, ..ApplyOptions::default() };
    let (outcome, _) = attempt_update(&mut vm, &app, from, &opts);
    println!("outcome: {outcome}");
    assert!(matches!(outcome, UpdateOutcome::TimedOut { .. }));

    // The abort is clean: the old version keeps serving.
    let resp = one_shot(&mut vm, app.port(), "GET /about.html", 20_000)
        .expect("old version still serves");
    println!("\nafter the aborted update the old version still serves: {:?}", resp.0);
    println!(
        "(the paper reports exactly this for Jetty 5.1.3 and JavaEmailServer 1.3: \
         no safe point is ever reached, so the update is abandoned)"
    );
}
