//! Live-update the webserver under load (the paper's Figure 5 scenario):
//! start version 5.1.5, saturate it with requests, dynamically update to
//! 5.1.6, and keep serving — comparing throughput before and after.
//!
//! Run with: `cargo run --release --example webserver_live_update`

use jvolve_repro::apps::harness::{attempt_update, bench_apply_options, boot};
use jvolve_repro::apps::webserver::{Webserver, PORT};
use jvolve_repro::apps::workload::drive_http;
use jvolve_repro::apps::GuestApp;

fn main() {
    let app = Webserver;
    let versions = app.versions();
    let from = versions.iter().position(|v| v.label == "5.1.5").expect("5.1.5 exists");
    let paths = ["/index.html", "/about.html", "/data.json"];

    println!("booting webserver {} with {} worker threads ...", versions[from].label, 4);
    let mut vm = boot(&app, from);

    println!("driving load before the update ...");
    let before = drive_http(&mut vm, PORT, &paths, 8, 10_000);
    println!(
        "  before: {} requests, {:.1} req/kslice, median latency {} slices",
        before.completed,
        before.throughput_per_kslice(),
        before.median_latency()
    );

    println!("\napplying 5.1.5 -> 5.1.6 while the server runs ...");
    let (outcome, stats) = attempt_update(&mut vm, &app, from, &bench_apply_options());
    println!("outcome: {outcome}");
    let stats = stats.expect("update applied");
    println!(
        "  pause: safepoint {:?} + load {:?} + gc {:?} + transform {:?}",
        stats.safepoint_time, stats.classload_time, stats.gc_time, stats.transform_time
    );

    println!("\ndriving load after the update ...");
    let after = drive_http(&mut vm, PORT, &paths, 8, 10_000);
    println!(
        "  after:  {} requests, {:.1} req/kslice, median latency {} slices",
        after.completed,
        after.throughput_per_kslice(),
        after.median_latency()
    );

    let ratio = after.throughput_per_kslice() / before.throughput_per_kslice();
    println!("\nthroughput ratio after/before = {ratio:.3} (paper: essentially identical)");
    assert!(after.completed > 0);
}
